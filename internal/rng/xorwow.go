// Package rng implements the XOR-WOW pseudo-random number generator used
// by the EvE processing elements in the GeneSys SoC.
//
// The paper (Section IV-C4) specifies that each PE is fed 8-bit random
// numbers every cycle from a PRNG implementing the XOR-WOW algorithm, the
// same generator family used inside NVIDIA GPUs (Marsaglia, "Xorshift
// RNGs", 2003). This package provides that generator along with the
// convenience draws the rest of the system needs (uniform floats,
// Gaussians, bounded integers) so that every stochastic decision in the
// repository flows from one well-defined, seedable entropy source.
package rng

import "math"

// XorWow is a Marsaglia xorwow generator: five 32-bit xorshift words plus
// a Weyl counter. Its period is 2^192 - 2^32. The zero value is not a
// valid generator; use New.
type XorWow struct {
	x, y, z, w, v uint32
	d             uint32 // Weyl sequence counter
	gauss         float64
	hasGauss      bool
}

// New returns a generator seeded from a single 64-bit seed. The seed is
// expanded into the five state words with a splitmix64 sequence so that
// nearby seeds produce uncorrelated streams.
func New(seed uint64) *XorWow {
	g := &XorWow{}
	g.Seed(seed)
	return g
}

// Seed resets the generator state from a 64-bit seed.
func (g *XorWow) Seed(seed uint64) {
	s := seed
	next := func() uint32 {
		// splitmix64 step, truncated to 32 bits.
		s += 0x9E3779B97F4A7C15
		z := s
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return uint32(z ^ (z >> 31))
	}
	g.x, g.y, g.z, g.w, g.v = next(), next(), next(), next(), next()
	// Guard against the (astronomically unlikely) all-zero xorshift state.
	if g.x|g.y|g.z|g.w|g.v == 0 {
		g.v = 0x6C078965
	}
	g.d = next()
	g.hasGauss = false
}

// State is a serializable snapshot of a generator. It exists so long
// runs can checkpoint mid-stream and resume bit-identically: restoring
// a State continues the exact output sequence where the snapshot left
// off, which re-seeding cannot do.
type State struct {
	X        uint32  `json:"x"`
	Y        uint32  `json:"y"`
	Z        uint32  `json:"z"`
	W        uint32  `json:"w"`
	V        uint32  `json:"v"`
	D        uint32  `json:"d"`
	Gauss    float64 `json:"gauss,omitempty"`
	HasGauss bool    `json:"has_gauss,omitempty"`
}

// State snapshots the generator.
func (g *XorWow) State() State {
	return State{X: g.x, Y: g.y, Z: g.z, W: g.w, V: g.v, D: g.d,
		Gauss: g.gauss, HasGauss: g.hasGauss}
}

// SetState restores a snapshot taken with State. An all-zero xorshift
// state (never produced by a live generator) is repaired the same way
// Seed repairs it, so a corrupt snapshot cannot brick the stream.
func (g *XorWow) SetState(s State) {
	g.x, g.y, g.z, g.w, g.v = s.X, s.Y, s.Z, s.W, s.V
	if g.x|g.y|g.z|g.w|g.v == 0 {
		g.v = 0x6C078965
	}
	g.d = s.D
	g.gauss = s.Gauss
	g.hasGauss = s.HasGauss
}

// Split returns a new generator whose stream is decorrelated from g's.
// It is used to hand independent streams to the per-PE PRNGs without
// sharing state, mirroring the per-PE PRNG blocks in the chip.
func (g *XorWow) Split() *XorWow {
	return New(uint64(g.Uint32())<<32 | uint64(g.Uint32()))
}

// Uint32 advances the generator and returns the next 32-bit output.
func (g *XorWow) Uint32() uint32 {
	t := g.x ^ (g.x >> 2)
	g.x, g.y, g.z, g.w = g.y, g.z, g.w, g.v
	g.v = (g.v ^ (g.v << 4)) ^ (t ^ (t << 1))
	g.d += 362437
	return g.v + g.d
}

// Byte returns the next 8-bit output — the quantity delivered to each EvE
// PE every cycle in the hardware.
func (g *XorWow) Byte() uint8 {
	return uint8(g.Uint32() >> 24)
}

// Uint64 returns a 64-bit value composed of two successive 32-bit draws.
func (g *XorWow) Uint64() uint64 {
	hi := uint64(g.Uint32())
	lo := uint64(g.Uint32())
	return hi<<32 | lo
}

// Float64 returns a uniform float64 in [0, 1).
func (g *XorWow) Float64() float64 {
	// 53 random bits / 2^53.
	return float64(g.Uint64()>>11) / (1 << 53)
}

// Float32 returns a uniform float32 in [0, 1).
func (g *XorWow) Float32() float32 {
	return float32(g.Uint32()>>8) / (1 << 24)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (g *XorWow) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	return int(g.Uint64() % uint64(n))
}

// Bool returns true with probability p.
func (g *XorWow) Bool(p float64) bool {
	return g.Float64() < p
}

// Range returns a uniform float64 in [lo, hi).
func (g *XorWow) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*g.Float64()
}

// NormFloat64 returns a standard normal variate using the Marsaglia polar
// method. The perturbation mutation in NEAT draws Gaussian deltas.
func (g *XorWow) NormFloat64() float64 {
	if g.hasGauss {
		g.hasGauss = false
		return g.gauss
	}
	for {
		u := 2*g.Float64() - 1
		v := 2*g.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		g.gauss = v * f
		g.hasGauss = true
		return u * f
	}
}

// Perm returns a random permutation of [0, n) using Fisher–Yates.
func (g *XorWow) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := g.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
