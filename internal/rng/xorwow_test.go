package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint32() != b.Uint32() {
			t.Fatalf("generators with same seed diverged at draw %d", i)
		}
	}
}

func TestSeedChangesStream(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical draws", same)
	}
}

func TestReseed(t *testing.T) {
	g := New(7)
	first := make([]uint32, 16)
	for i := range first {
		first[i] = g.Uint32()
	}
	g.Seed(7)
	for i := range first {
		if got := g.Uint32(); got != first[i] {
			t.Fatalf("reseeded stream diverged at %d: %d vs %d", i, got, first[i])
		}
	}
}

func TestFloat64Range(t *testing.T) {
	g := New(3)
	for i := 0; i < 100000; i++ {
		f := g.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	g := New(11)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += g.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestByteCoverage(t *testing.T) {
	g := New(5)
	var seen [256]bool
	for i := 0; i < 100000; i++ {
		seen[g.Byte()] = true
	}
	for v, ok := range seen {
		if !ok {
			t.Fatalf("byte value %d never produced in 100k draws", v)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	g := New(9)
	for _, n := range []int{1, 2, 3, 10, 150, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := g.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	g := New(13)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := g.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(21)
	child := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint32() == child.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split stream tracks parent: %d/100 identical", same)
	}
}

func TestPermIsPermutation(t *testing.T) {
	g := New(17)
	for _, n := range []int{0, 1, 2, 5, 100} {
		p := g.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestBoolProbability(t *testing.T) {
	g := New(23)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if g.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency = %v", frac)
	}
}

func TestRangeBounds(t *testing.T) {
	g := New(29)
	for i := 0; i < 10000; i++ {
		v := g.Range(-3, 5)
		if v < -3 || v >= 5 {
			t.Fatalf("Range(-3,5) = %v", v)
		}
	}
}

// Property: any seed produces a generator whose first 64 bytes are not all
// identical (stream is alive) and Float64 stays in range.
func TestQuickSeedLiveness(t *testing.T) {
	f := func(seed uint64) bool {
		g := New(seed)
		first := g.Byte()
		varied := false
		for i := 0; i < 63; i++ {
			if g.Byte() != first {
				varied = true
			}
		}
		fv := g.Float64()
		return varied && fv >= 0 && fv < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Intn(n) is always within bounds for positive n.
func TestQuickIntnBounds(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		m := int(n%1000) + 1
		g := New(seed)
		for i := 0; i < 32; i++ {
			v := g.Intn(m)
			if v < 0 || v >= m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint32(b *testing.B) {
	g := New(1)
	for i := 0; i < b.N; i++ {
		_ = g.Uint32()
	}
}

func BenchmarkNormFloat64(b *testing.B) {
	g := New(1)
	for i := 0; i < b.N; i++ {
		_ = g.NormFloat64()
	}
}
