// Package evolve closes the GeneSys learning loop: it runs every genome
// of a NEAT population through an environment (steps 1–6 of the
// Section IV-B walkthrough), translates rewards into fitness, and
// collects the characterization metrics of Section III — per-generation
// operation counts, gene totals, memory footprint and parent reuse —
// that the figures and the hardware models consume.
package evolve

import (
	"fmt"

	"repro/internal/env"
)

// Shaper converts an episode's reward stream into a fitness value —
// the "Reward to Fitness" block of Fig. 6. The zero-state of a Shaper
// is reset per episode via Reset.
type Shaper interface {
	Reset()
	// Observe sees each step's observation and reward.
	Observe(obs []float64, reward float64)
	// Fitness produces the episode fitness from the final environment
	// state and the step count.
	Fitness(e env.Env, steps int) float64
}

// cumReward is the default shaper: fitness = cumulative reward.
type cumReward struct{ total float64 }

func (c *cumReward) Reset()                         { c.total = 0 }
func (c *cumReward) Observe(_ []float64, r float64) { c.total += r }
func (c *cumReward) Fitness(env.Env, int) float64   { return c.total }

// mcShaper shapes MountainCar: solving scores by speed; otherwise the
// best altitude reached provides a gradient toward the flag.
type mcShaper struct {
	maxPos float64
}

func (m *mcShaper) Reset() { m.maxPos = -1.2 }
func (m *mcShaper) Observe(obs []float64, _ float64) {
	if len(obs) > 0 && obs[0] > m.maxPos {
		m.maxPos = obs[0]
	}
}
func (m *mcShaper) Fitness(e env.Env, steps int) float64 {
	if mc, ok := e.(*env.MountainCar); ok && mc.AtGoal() {
		return 100 + float64(e.MaxSteps()-steps)
	}
	// Progress shaping in [0, 100): scaled best position.
	return (m.maxPos + 1.2) / 1.7 * 90
}

// acShaper shapes Acrobot: solving scores by speed, otherwise by the
// best tip height achieved.
type acShaper struct{ best float64 }

func (a *acShaper) Reset()                     { a.best = -2 }
func (a *acShaper) Observe([]float64, float64) {}
func (a *acShaper) Fitness(e env.Env, steps int) float64 {
	ac, ok := e.(*env.Acrobot)
	if !ok {
		return 0
	}
	h := ac.TipHeight()
	if h > a.best {
		a.best = h
	}
	if h > 1 {
		return 100 + float64(e.MaxSteps()-steps)
	}
	return (a.best + 2) / 3 * 90
}

// Workload couples an environment with its fitness shaping, target and
// evaluation policy — one row of Table I plus the pieces the paper
// keeps in the "fitness function" slot (the only thing it changed
// between runs).
type Workload struct {
	// EnvName selects the environment from the env registry.
	EnvName string
	// Episodes averaged per fitness evaluation.
	Episodes int
	// Target is the raw fitness at which the task counts as solved.
	Target float64
	// Floor is the raw fitness corresponding to normalized 0 (used for
	// the normalized-fitness curves of Fig. 4a).
	Floor float64
	// NewShaper builds a fresh reward→fitness shaper.
	NewShaper func() Shaper
}

// Normalize maps a raw fitness onto [0, ~1] with 1 at the target, the
// y-axis of Fig. 4(a).
func (w Workload) Normalize(fit float64) float64 {
	if w.Target == w.Floor {
		return 0
	}
	return (fit - w.Floor) / (w.Target - w.Floor)
}

// workloads registers the Table I suite.
var workloads = map[string]Workload{
	"cartpole": {
		EnvName: "cartpole", Episodes: 3,
		Target: 195, Floor: 0,
		NewShaper: func() Shaper { return &cumReward{} },
	},
	"mountaincar": {
		EnvName: "mountaincar", Episodes: 3,
		Target: 110, Floor: 0,
		NewShaper: func() Shaper { return &mcShaper{} },
	},
	"acrobot": {
		EnvName: "acrobot", Episodes: 2,
		Target: 100, Floor: 0,
		NewShaper: func() Shaper { return &acShaper{} },
	},
	"lunarlander": {
		EnvName: "lunarlander", Episodes: 3,
		Target: 200, Floor: -300,
		NewShaper: func() Shaper { return &cumReward{} },
	},
	"bipedal": {
		EnvName: "bipedal", Episodes: 2,
		Target: 20, Floor: -100,
		NewShaper: func() Shaper { return &cumReward{} },
	},
	"mario": {
		EnvName: "mario", Episodes: 2,
		Target: 0.95, Floor: 0,
		NewShaper: func() Shaper { return &cumReward{} },
	},
	"airraid-ram": {
		EnvName: "airraid-ram", Episodes: 1,
		Target: 200, Floor: -200,
		NewShaper: func() Shaper { return &cumReward{} },
	},
	"alien-ram": {
		EnvName: "alien-ram", Episodes: 1,
		Target: 150, Floor: -200,
		NewShaper: func() Shaper { return &cumReward{} },
	},
	"asterix-ram": {
		EnvName: "asterix-ram", Episodes: 1,
		Target: 180, Floor: -200,
		NewShaper: func() Shaper { return &cumReward{} },
	},
	"amidar-ram": {
		EnvName: "amidar-ram", Episodes: 1,
		Target: 180, Floor: -200,
		NewShaper: func() Shaper { return &cumReward{} },
	},
}

// WorkloadByName returns the named workload definition.
func WorkloadByName(name string) (Workload, error) {
	w, ok := workloads[name]
	if !ok {
		return Workload{}, fmt.Errorf("evolve: unknown workload %q", name)
	}
	return w, nil
}

// WorkloadNames lists the registered workloads (sorted via env.Names —
// every workload wraps a registered environment).
func WorkloadNames() []string {
	var out []string
	for _, n := range env.Names() {
		if _, ok := workloads[n]; ok {
			out = append(out, n)
		}
	}
	return out
}

// ControlSuite is the small-observation suite the paper plots first
// (classic control).
func ControlSuite() []string {
	return []string{"cartpole", "mountaincar", "lunarlander"}
}

// AtariSuite is the 128-byte RAM suite.
func AtariSuite() []string {
	return []string{"airraid-ram", "alien-ram", "asterix-ram", "amidar-ram"}
}

// PaperSuite is the six-workload set of Fig. 9 and Fig. 10: the three
// control tasks plus AirRaid, Amidar and Alien.
func PaperSuite() []string {
	return append(ControlSuite(), "airraid-ram", "amidar-ram", "alien-ram")
}
