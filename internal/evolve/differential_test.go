package evolve

import (
	"context"
	"math"
	"runtime"
	"testing"

	"repro/internal/neat"
)

// evolveGens runs gens generations of a fresh runner for the workload,
// with configure applied before the first step (Scalar/BatchWidth/
// Parallelism knobs), and returns the runner with its History filled.
func evolveGens(t *testing.T, workload string, seed uint64, pop, gens int, configure func(*Runner)) *Runner {
	t.Helper()
	cfg := neat.DefaultConfig(0, 0)
	cfg.PopulationSize = pop
	r, err := NewRunner(workload, cfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	if configure != nil {
		configure(r)
	}
	ctx := context.Background()
	for i := 0; i < gens; i++ {
		st, err := r.Step(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if st.Solved {
			break
		}
	}
	return r
}

// compareRuns bit-compares two evolution trajectories: every
// per-generation stat (fitness as raw float bits, work ledgers as
// exact integers) and the final population's per-genome fitness. Any
// float deviation in evaluation compounds through reproduction, so
// equality over multiple generations pins the batch engine to the
// scalar semantics transitively.
func compareRuns(t *testing.T, want, got *Runner, label string) {
	t.Helper()
	if len(want.History) != len(got.History) {
		t.Fatalf("%s: history length %d != %d", label, len(got.History), len(want.History))
	}
	for i := range want.History {
		a, b := want.History[i], got.History[i]
		if math.Float64bits(a.MaxFitness) != math.Float64bits(b.MaxFitness) ||
			math.Float64bits(a.MeanFitness) != math.Float64bits(b.MeanFitness) {
			t.Fatalf("%s: gen %d fitness diverged: scalar max=%v mean=%v, batch max=%v mean=%v",
				label, i, a.MaxFitness, a.MeanFitness, b.MaxFitness, b.MeanFitness)
		}
		if a.EnvSteps != b.EnvSteps || a.InferenceMACs != b.InferenceMACs || a.VertexUpdates != b.VertexUpdates {
			t.Fatalf("%s: gen %d work ledger diverged: scalar %d/%d/%d, batch %d/%d/%d",
				label, i, a.EnvSteps, a.InferenceMACs, a.VertexUpdates, b.EnvSteps, b.InferenceMACs, b.VertexUpdates)
		}
		if a.TotalGenes != b.TotalGenes || a.NumSpecies != b.NumSpecies ||
			a.CrossoverOps != b.CrossoverOps || a.MutationOps != b.MutationOps {
			t.Fatalf("%s: gen %d reproduction diverged: %+v vs %+v", label, i, a, b)
		}
	}
	if len(want.Pop.Genomes) != len(got.Pop.Genomes) {
		t.Fatalf("%s: population size %d != %d", label, len(got.Pop.Genomes), len(want.Pop.Genomes))
	}
	for i := range want.Pop.Genomes {
		fa, fb := want.Pop.Genomes[i].Fitness, got.Pop.Genomes[i].Fitness
		if math.Float64bits(fa) != math.Float64bits(fb) {
			t.Fatalf("%s: genome %d fitness %v != scalar %v", label, i, fb, fa)
		}
	}
}

// TestBatchMatchesScalarAllWorkloads is the tentpole's differential
// acceptance test: for every registered workload, several generations
// of randomized NEAT genomes evaluated by the batch engine must equal
// the reference serial path bit for bit — fitness, PRNG-driven
// reproduction, and work ledgers. A narrow batch width forces lane
// backfill and swap-retire on every generation.
func TestBatchMatchesScalarAllWorkloads(t *testing.T) {
	for _, name := range WorkloadNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			scalar := evolveGens(t, name, 97, 20, 2, func(r *Runner) { r.Scalar = true })
			batch := evolveGens(t, name, 97, 20, 2, func(r *Runner) { r.BatchWidth = 6 })
			compareRuns(t, scalar, batch, name)
		})
	}
}

// TestBatchWidthInvariance pins schedule independence: any lane width
// (including degenerate width 1 and a width larger than the unit
// count) produces the identical trajectory, because episode seeds
// depend only on (runner seed, generation, genome, episode).
func TestBatchWidthInvariance(t *testing.T) {
	scalar := evolveGens(t, "cartpole", 11, 18, 3, func(r *Runner) { r.Scalar = true })
	for _, width := range []int{1, 2, 5, 256} {
		batch := evolveGens(t, "cartpole", 11, 18, 3, func(r *Runner) { r.BatchWidth = width })
		compareRuns(t, scalar, batch, "cartpole/width")
	}
}

// TestBatchParallelMatchesSerial pins the multi-worker batch dispatch
// (chunked jobs over the worker pool) to the same bit-exact result.
func TestBatchParallelMatchesSerial(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	for _, seed := range []uint64{3, 29} {
		scalar := evolveGens(t, "cartpole", seed, 24, 3, func(r *Runner) { r.Scalar = true })
		par := evolveGens(t, "cartpole", seed, 24, 3, func(r *Runner) {
			r.Parallelism = 3
			r.BatchWidth = 4
		})
		compareRuns(t, scalar, par, "cartpole/parallel")
	}
}
