package evolve

import (
	"context"
	"testing"

	"repro/internal/gene"
	"repro/internal/neat"
)

func TestRefineNeverRegresses(t *testing.T) {
	cfg := neat.DefaultConfig(1, 1)
	cfg.PopulationSize = 30
	r, err := NewRunner("mountaincar", cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Step(context.Background()); err != nil {
		t.Fatal(err)
	}
	res, err := r.RefineBest(25, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trials != 25 {
		t.Fatalf("trials %d", res.Trials)
	}
	if res.FitnessEnd < res.FitnessStart {
		t.Fatalf("refinement regressed: %v -> %v", res.FitnessStart, res.FitnessEnd)
	}
	if res.Accepted > 0 && res.FitnessEnd == res.FitnessStart {
		t.Fatal("accepted trials without fitness change")
	}
	t.Logf("refine mountaincar: %v -> %v (%d/%d accepted)",
		res.FitnessStart, res.FitnessEnd, res.Accepted, res.Trials)
}

func TestRefineKeepsWeightsInHardwareRange(t *testing.T) {
	cfg := neat.DefaultConfig(1, 1)
	cfg.PopulationSize = 20
	r, err := NewRunner("cartpole", cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Step(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := r.RefineBest(50, 2); err != nil {
		t.Fatal(err)
	}
	best := r.Pop.Best()
	for _, c := range best.Conns {
		if c.Weight >= gene.AttrLimit || c.Weight < -gene.AttrLimit {
			t.Fatalf("refined weight %v outside hardware range", c.Weight)
		}
	}
	if err := best.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRefineOnEmptyPopulation(t *testing.T) {
	r := &Runner{}
	res, err := r.RefineBest(10, 1)
	if err != nil || res.Trials != 0 {
		t.Fatalf("empty population mishandled: %+v %v", res, err)
	}
}

// TestLamarckianHybridHelpsHardTask: with the same total budget, a few
// refinement trials on the elite should not hurt — and typically
// accelerate — progress on the sparse mountaincar task.
func TestLamarckianHybridHelpsHardTask(t *testing.T) {
	run := func(refine bool) float64 {
		cfg := neat.DefaultConfig(1, 1)
		cfg.PopulationSize = 40
		r, err := NewRunner("mountaincar", cfg, 21)
		if err != nil {
			t.Fatal(err)
		}
		best := 0.0
		for g := 0; g < 6; g++ {
			st, err := r.Step(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if st.MaxFitness > best {
				best = st.MaxFitness
			}
			if refine {
				res, err := r.RefineBest(10, uint64(g))
				if err != nil {
					t.Fatal(err)
				}
				if res.FitnessEnd > best {
					best = res.FitnessEnd
				}
			}
		}
		return best
	}
	plain := run(false)
	hybrid := run(true)
	if hybrid < plain {
		t.Fatalf("hybrid (%v) worse than plain evolution (%v)", hybrid, plain)
	}
	t.Logf("mountaincar best after 6 gens: plain %v, lamarckian %v", plain, hybrid)
}
