package evolve

import (
	"context"
	"testing"

	"repro/internal/neat"
)

// benchRunner builds a cartpole runner advanced a few generations so the
// benchmarked population carries evolved (non-minimal) genomes.
func benchRunner(tb testing.TB, pop, warmupGens int) *Runner {
	tb.Helper()
	cfg := neat.DefaultConfig(0, 0)
	cfg.PopulationSize = pop
	r, err := NewRunner("cartpole", cfg, 42)
	if err != nil {
		tb.Fatal(err)
	}
	for g := 0; g < warmupGens; g++ {
		if _, err := r.Step(context.Background()); err != nil {
			tb.Fatal(err)
		}
	}
	return r
}

// BenchmarkEvaluateGeneration measures one full population evaluation —
// the population-level-parallel hot loop every generation pays. The
// population is held at a fixed generation (no Epoch between
// iterations), so iterations are directly comparable.
func BenchmarkEvaluateGeneration(b *testing.B) {
	r := benchRunner(b, 64, 8)
	r.Parallelism = 4
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := r.EvaluateGeneration(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluateGenerationScalar pins the reference serial
// semantics — the pre-batch-engine evaluation path — on the identical
// workload, so the batch engine's speedup is measured in-tree.
func BenchmarkEvaluateGenerationScalar(b *testing.B) {
	r := benchRunner(b, 64, 8)
	r.Parallelism = 4
	r.Scalar = true
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := r.EvaluateGeneration(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluateGenerationBatch is the tensorized engine at its
// default width on the same evolved population — the PR6 acceptance
// benchmark (same workload as BenchmarkEvaluateGeneration, batch
// successor).
func BenchmarkEvaluateGenerationBatch(b *testing.B) {
	r := benchRunner(b, 64, 8)
	r.Parallelism = 4
	r.BatchWidth = 64
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := r.EvaluateGeneration(ctx); err != nil {
			b.Fatal(err)
		}
	}
}
