package evolve

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync"

	"repro/internal/env"
	"repro/internal/gene"
	"repro/internal/hw/hwsim"
	"repro/internal/neat"
	"repro/internal/network"
)

// GenStats is the per-generation characterization record: everything
// Section III plots, plus the inference-work totals the platform and
// hardware models charge for.
type GenStats struct {
	Generation int

	// Fitness metrics (raw and Fig. 4a-normalized).
	MaxFitness  float64
	MeanFitness float64
	NormMax     float64
	NormMean    float64
	Solved      bool

	// Population structure (Fig. 4b, Fig. 11a, Fig. 5b).
	TotalGenes     int
	NodeGenes      int
	ConnGenes      int
	FootprintBytes int
	NumSpecies     int

	// Reproduction characterization (Fig. 5a, Fig. 4c).
	CrossoverOps       int64
	MutationOps        int64
	FittestParentReuse int
	MaxParentReuse     int

	// Inference work of the evaluation phase: environment steps summed
	// over the population, and the MAC count those steps performed
	// (edges × steps per genome), the quantities Fig. 9a/9b charge.
	EnvSteps      int64
	InferenceMACs int64
	// VertexUpdates is the number of node evaluations performed.
	VertexUpdates int64
}

// CounterReport renders the stats as a hwsim report node named
// "evolve" — the structured-row form per-generation records flow
// through to stats and the CLIs.
func (st GenStats) CounterReport() hwsim.Report {
	return hwsim.Report{
		Name: "evolve",
		Ints: map[string]int64{
			"solved":               boolInt(st.Solved),
			"total_genes":          int64(st.TotalGenes),
			"node_genes":           int64(st.NodeGenes),
			"conn_genes":           int64(st.ConnGenes),
			"footprint_bytes":      int64(st.FootprintBytes),
			"num_species":          int64(st.NumSpecies),
			"crossover_ops":        st.CrossoverOps,
			"mutation_ops":         st.MutationOps,
			"fittest_parent_reuse": int64(st.FittestParentReuse),
			"max_parent_reuse":     int64(st.MaxParentReuse),
			"env_steps":            st.EnvSteps,
			"inference_macs":       st.InferenceMACs,
			"vertex_updates":       st.VertexUpdates,
		},
		Floats: map[string]float64{
			"max_fitness":  st.MaxFitness,
			"mean_fitness": st.MeanFitness,
			"norm_max":     st.NormMax,
			"norm_mean":    st.NormMean,
		},
	}
}

func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// Runner evolves one workload, recording per-generation statistics and
// (optionally) a reproduction trace.
type Runner struct {
	Workload Workload
	Pop      *neat.Population
	// History accumulates one GenStats per evaluated generation.
	History []GenStats
	// Parallelism caps the evaluation worker pool (population-level
	// parallelism); 0 means GOMAXPROCS.
	Parallelism int
	// Sink, when set, receives one hwsim.Record per completed
	// generation (the GenStats counter tree), tagged with the workload
	// name.
	Sink hwsim.Sink
	// CheckpointPath, together with CheckpointEvery, makes Run persist
	// the population to this file at generation boundaries (atomic
	// temp-file + rename, so a crash mid-write never corrupts the last
	// good checkpoint) and on context cancellation.
	CheckpointPath string
	// CheckpointEvery is the checkpoint interval in generations; 0
	// disables periodic checkpoints.
	CheckpointEvery int

	name     string
	opCounts neat.OpCounts
	seed     uint64
	extraRec neat.Recorder
}

// NewRunner builds a population configured for the workload's
// environment dimensions and wires up the op-count recorder.
func NewRunner(workloadName string, cfg neat.Config, seed uint64) (*Runner, error) {
	w, err := WorkloadByName(workloadName)
	if err != nil {
		return nil, err
	}
	probe, err := env.New(w.EnvName)
	if err != nil {
		return nil, err
	}
	cfg.NumInputs = probe.ObservationSize()
	cfg.NumOutputs = probe.ActionSize()
	pop, err := neat.NewPopulation(cfg, seed)
	if err != nil {
		return nil, err
	}
	r := &Runner{Workload: w, Pop: pop, name: workloadName, seed: seed}
	pop.SetRecorder(&r.opCounts)
	return r, nil
}

// SetRecorder attaches an additional reproduction recorder (e.g. a
// hardware trace) alongside the internal op counter.
func (r *Runner) SetRecorder(rec neat.Recorder) {
	r.extraRec = rec
	r.Pop.SetRecorder(neat.MultiRecorder(&r.opCounts, rec))
}

// evalResult carries one genome's evaluation back from a worker.
type evalResult struct {
	idx     int
	fitness float64
	steps   int64
	macs    int64
	updates int64
	err     error
}

// EvaluateGeneration scores every genome in the current population
// (steps 1–6 of the walkthrough), exploiting population-level
// parallelism with a worker pool. It returns aggregate inference work.
func (r *Runner) EvaluateGeneration() (envSteps, macs, updates int64, err error) {
	genomes := r.Pop.Genomes
	workers := r.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(genomes) {
		workers = len(genomes)
	}

	jobs := make(chan int)
	results := make(chan evalResult, len(genomes))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e, eerr := env.New(r.Workload.EnvName)
			if eerr != nil {
				for idx := range jobs {
					results <- evalResult{idx: idx, err: eerr}
				}
				return
			}
			shaper := r.Workload.NewShaper()
			for idx := range jobs {
				res := r.safeEvaluate(e, shaper, genomes[idx])
				res.idx = idx
				results <- res
			}
		}()
	}
	for i := range genomes {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	close(results)

	for res := range results {
		if res.err != nil {
			return 0, 0, 0, res.err
		}
		genomes[res.idx].Fitness = res.fitness
		envSteps += res.steps
		macs += res.macs
		updates += res.updates
	}
	return envSteps, macs, updates, nil
}

// safeEvaluate shields the worker pool from a panicking fitness
// evaluation: the panic surfaces as that genome's evaluation error
// instead of unwinding the worker goroutine and killing the process.
func (r *Runner) safeEvaluate(e env.Env, shaper Shaper, g *gene.Genome) (res evalResult) {
	defer func() {
		if p := recover(); p != nil {
			res = evalResult{err: fmt.Errorf("genome %d: evaluation panic: %v", g.ID, p)}
		}
	}()
	return r.evaluateGenome(e, shaper, g)
}

// evaluateGenome runs the workload's episodes for one genome.
func (r *Runner) evaluateGenome(e env.Env, shaper Shaper, g *gene.Genome) evalResult {
	net, err := network.New(g)
	if err != nil {
		return evalResult{err: fmt.Errorf("genome %d: %w", g.ID, err)}
	}
	var res evalResult
	var total float64
	episodes := r.Workload.Episodes
	if episodes < 1 {
		episodes = 1
	}
	for ep := 0; ep < episodes; ep++ {
		// Deterministic per-(generation, genome, episode) seed.
		seed := r.seed ^ uint64(r.Pop.Generation)<<40 ^ uint64(g.ID)<<8 ^ uint64(ep)
		obs := e.Reset(seed)
		shaper.Reset()
		steps := 0
		for {
			action, ferr := net.Feed(obs)
			if ferr != nil {
				return evalResult{err: fmt.Errorf("genome %d: %w", g.ID, ferr)}
			}
			var reward float64
			var done bool
			obs, reward, done = e.Step(action)
			shaper.Observe(obs, reward)
			steps++
			res.steps++
			res.macs += int64(net.NumEdges())
			res.updates += int64(net.NumVertices() - net.NumInputs())
			if done {
				break
			}
		}
		total += shaper.Fitness(e, steps)
	}
	res.fitness = total / float64(episodes)
	return res
}

// Step evaluates the current generation and, unless it solved the task,
// reproduces the next one. It appends and returns the generation's
// stats.
func (r *Runner) Step() (GenStats, error) {
	w := r.Workload
	envSteps, macs, updates, err := r.EvaluateGeneration()
	if err != nil {
		return GenStats{}, err
	}

	best := r.Pop.Best()
	nodes, conns := r.Pop.GeneComposition()
	st := GenStats{
		Generation:     r.Pop.Generation,
		MaxFitness:     best.Fitness,
		MeanFitness:    r.Pop.MeanFitness(),
		TotalGenes:     r.Pop.TotalGenes(),
		NodeGenes:      nodes,
		ConnGenes:      conns,
		FootprintBytes: r.Pop.FootprintBytes(),
		EnvSteps:       envSteps,
		InferenceMACs:  macs,
		VertexUpdates:  updates,
	}
	st.NormMax = w.Normalize(st.MaxFitness)
	st.NormMean = w.Normalize(st.MeanFitness)
	st.Solved = st.MaxFitness >= w.Target

	if !st.Solved {
		r.opCounts.Reset()
		repro, err := r.Pop.Epoch()
		if err != nil {
			return GenStats{}, err
		}
		st.NumSpecies = repro.NumSpecies
		st.CrossoverOps = r.opCounts.Crossovers()
		st.MutationOps = r.opCounts.Mutations()
		st.FittestParentReuse = repro.FittestParentReuse
		st.MaxParentReuse = repro.MaxParentReuse
	}

	r.History = append(r.History, st)
	if r.Sink != nil {
		r.Sink.Record(hwsim.Record{
			Workload:   r.name,
			Generation: st.Generation,
			Report:     st.CounterReport(),
		})
	}
	return st, nil
}

// Run executes steps until the population reaches maxGenerations,
// stopping early when the target fitness is reached or ctx is
// cancelled. The loop is bounded by the population's own generation
// counter (not a local one), so a runner restored from a checkpoint
// continues where the interrupted run stopped rather than replaying
// the full budget. It reports whether the task was solved; a
// cancellation returns ctx.Err() after a final checkpoint (when
// checkpointing is configured), so the run can resume at the exact
// boundary it was cut at.
func (r *Runner) Run(ctx context.Context, maxGenerations int) (bool, error) {
	for r.Pop.Generation < maxGenerations {
		if err := ctx.Err(); err != nil {
			if r.CheckpointPath != "" {
				if serr := r.SaveCheckpoint(r.CheckpointPath); serr != nil {
					return false, errors.Join(err, serr)
				}
			}
			return false, err
		}
		st, err := r.Step()
		if err != nil {
			return false, err
		}
		if st.Solved {
			return true, nil
		}
		if r.CheckpointPath != "" && r.CheckpointEvery > 0 &&
			r.Pop.Generation%r.CheckpointEvery == 0 {
			if err := r.SaveCheckpoint(r.CheckpointPath); err != nil {
				return false, fmt.Errorf("checkpoint: %w", err)
			}
		}
	}
	return false, nil
}

// SaveCheckpoint atomically persists the population state: the JSON is
// written to a temp file in the target directory and renamed over
// path, so an interrupted save leaves the previous checkpoint intact.
func (r *Runner) SaveCheckpoint(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := r.Pop.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// RestoreCheckpoint replaces the runner's population with the state
// saved at path and rewires the reproduction recorders. Because the
// checkpoint carries the PRNG stream and evaluation seeds derive from
// (runner seed, generation, genome, episode), the restored run
// continues bit-identically to the uninterrupted one.
func (r *Runner) RestoreCheckpoint(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	pop, err := neat.Restore(f, r.seed)
	if err != nil {
		return err
	}
	r.Pop = pop
	if r.extraRec != nil {
		pop.SetRecorder(neat.MultiRecorder(&r.opCounts, r.extraRec))
	} else {
		pop.SetRecorder(&r.opCounts)
	}
	return nil
}

// Last returns the most recent generation stats (zero value if none).
func (r *Runner) Last() GenStats {
	if len(r.History) == 0 {
		return GenStats{}
	}
	return r.History[len(r.History)-1]
}
