package evolve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/env"
	"repro/internal/gene"
	"repro/internal/hw/hwsim"
	"repro/internal/neat"
	"repro/internal/network"
)

// GenStats is the per-generation characterization record: everything
// Section III plots, plus the inference-work totals the platform and
// hardware models charge for.
type GenStats struct {
	Generation int

	// Fitness metrics (raw and Fig. 4a-normalized).
	MaxFitness  float64
	MeanFitness float64
	NormMax     float64
	NormMean    float64
	Solved      bool

	// Population structure (Fig. 4b, Fig. 11a, Fig. 5b).
	TotalGenes     int
	NodeGenes      int
	ConnGenes      int
	FootprintBytes int
	NumSpecies     int

	// Reproduction characterization (Fig. 5a, Fig. 4c).
	CrossoverOps       int64
	MutationOps        int64
	FittestParentReuse int
	MaxParentReuse     int

	// Inference work of the evaluation phase: environment steps summed
	// over the population, and the MAC count those steps performed
	// (edges × steps per genome), the quantities Fig. 9a/9b charge.
	EnvSteps      int64
	InferenceMACs int64
	// VertexUpdates is the number of node evaluations performed.
	VertexUpdates int64
}

// CounterReport renders the stats as a hwsim report node named
// "evolve" — the structured-row form per-generation records flow
// through to stats and the CLIs.
func (st GenStats) CounterReport() hwsim.Report {
	return hwsim.Report{
		Name: "evolve",
		Ints: map[string]int64{
			"solved":               boolInt(st.Solved),
			"total_genes":          int64(st.TotalGenes),
			"node_genes":           int64(st.NodeGenes),
			"conn_genes":           int64(st.ConnGenes),
			"footprint_bytes":      int64(st.FootprintBytes),
			"num_species":          int64(st.NumSpecies),
			"crossover_ops":        st.CrossoverOps,
			"mutation_ops":         st.MutationOps,
			"fittest_parent_reuse": int64(st.FittestParentReuse),
			"max_parent_reuse":     int64(st.MaxParentReuse),
			"env_steps":            st.EnvSteps,
			"inference_macs":       st.InferenceMACs,
			"vertex_updates":       st.VertexUpdates,
		},
		Floats: map[string]float64{
			"max_fitness":  st.MaxFitness,
			"mean_fitness": st.MeanFitness,
			"norm_max":     st.NormMax,
			"norm_mean":    st.NormMean,
		},
	}
}

func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// Runner evolves one workload, recording per-generation statistics and
// (optionally) a reproduction trace.
type Runner struct {
	Workload Workload
	Pop      *neat.Population
	// History accumulates one GenStats per evaluated generation.
	History []GenStats
	// Parallelism caps the evaluation worker pool (population-level
	// parallelism); 0 means GOMAXPROCS.
	Parallelism int
	// BatchWidth is the lane count of the tensorized batch engine (the
	// number of episodes one worker advances in lock-step); 0 selects
	// the default width. See batch.go.
	BatchWidth int
	// Scalar disables the batch engine and evaluates with the reference
	// serial semantics (one episode at a time per worker). The batch
	// engine is pinned byte-identical to this path by the differential
	// tests; the knob exists for those tests and for debugging.
	Scalar bool
	// Sink, when set, receives one hwsim.Record per completed
	// generation (the GenStats counter tree), tagged with the workload
	// name.
	Sink hwsim.Sink
	// CheckpointPath, together with CheckpointEvery, makes Run persist
	// the population to this file at generation boundaries (atomic
	// temp-file + rename, so a crash mid-write never corrupts the last
	// good checkpoint) and on context cancellation.
	CheckpointPath string
	// CheckpointEvery is the checkpoint interval in generations; 0
	// disables periodic checkpoints.
	CheckpointEvery int
	// TrackChampion makes every Step clone the generation's best genome
	// post-evaluation (before reproduction replaces the population), so
	// island-model migration can export it after the fact; see Champion.
	TrackChampion bool
	// Phases, when set, receives per-phase wall-clock accounting from
	// every Step: evaluate_ns / speciate_ns / reproduce_ns accumulated
	// across generations, plus a generations count. Wall-clock is
	// host-dependent by nature, so it lives only in this live counter
	// node (surfaced through /metrics) and is deliberately kept out of
	// GenStats and the per-generation record stream, which are pinned
	// byte-identical across hosts and replays.
	Phases *hwsim.Counters
	// Objectives, when non-empty, switches the runner into Pareto
	// (multi-objective) mode: every Step ranks the evaluated population
	// with the NSGA-II machinery over this objective vector and shapes
	// selection from the resulting total order; the rank-0 front is
	// captured per generation (see Front). Empty keeps the scalar path
	// byte-identical — no moea code runs. See pareto.go.
	Objectives []string

	// champion is the latest tracked best genome (TrackChampion).
	champion *gene.Genome
	// front is the latest generation's Pareto front (Objectives mode).
	front []ParetoPoint

	name     string
	opCounts neat.OpCounts
	seed     uint64
	extraRec neat.Recorder
	// ckptReq is the cross-goroutine checkpoint request flag; see
	// RequestCheckpoint.
	ckptReq atomic.Bool

	// workers is the persistent population-level-parallelism pool: one
	// slot per evaluation worker, each owning an environment instance, a
	// reward shaper, and a compile Builder scratch. Slots are created
	// lazily on the first EvaluateGeneration and live for the runner's
	// lifetime, so generations after the first pay no environment
	// construction or compile-scratch allocation.
	workers []*evalWorker
	// phenos caches compiled phenotypes across generations keyed on the
	// genome version stamp — the software form of the paper's
	// genome-level reuse: elites and champions carry their parent's
	// stamp and skip recompilation.
	phenos network.Cache
	// dispatch is the reusable job-order scratch for EvaluateGeneration.
	dispatch []int
	// Batch-dispatch scratch, reused across generations so steady-state
	// evaluation allocates nothing: per-(genome, episode) fitness slots,
	// the LPT job list, topology groups (with their member slices), and
	// the TopoKey bucket index.
	perEpScratch []float64
	jobScratch   []batchJob
	groupScratch []evalGroup
	bucketIdx    map[uint64][]int
}

// evalWorker is one persistent slot of the evaluation pool. The first
// three fields serve the scalar (reference) path; the rest are the
// batch engine's per-worker resources, created lazily by ensureBatch
// and reused across generations (zero-alloc steady state).
type evalWorker struct {
	env     env.Env
	shaper  Shaper
	builder *network.Builder

	// laneSets holds the batch rollout state (vectorized env + planes)
	// per quantized lane width; widths recur across generations, so the
	// map converges to a handful of entries and stops allocating.
	laneSets map[int]*laneSet
	// obsCol is the gather scratch for Observe of non-trivial shapers.
	obsCol []float64
	// netSlots caches one loaded BatchProgram (+state) per (phenotype
	// topology, width), bucketed by TopoKey with structural
	// confirmation, and swept generationally like the phenotype cache.
	netSlots map[uint64][]*netSlot
}

// NewRunner builds a population configured for the workload's
// environment dimensions and wires up the op-count recorder.
func NewRunner(workloadName string, cfg neat.Config, seed uint64) (*Runner, error) {
	w, err := WorkloadByName(workloadName)
	if err != nil {
		return nil, err
	}
	probe, err := env.New(w.EnvName)
	if err != nil {
		return nil, err
	}
	cfg.NumInputs = probe.ObservationSize()
	cfg.NumOutputs = probe.ActionSize()
	pop, err := neat.NewPopulation(cfg, seed)
	if err != nil {
		return nil, err
	}
	r := &Runner{Workload: w, Pop: pop, name: workloadName, seed: seed}
	pop.SetRecorder(&r.opCounts)
	return r, nil
}

// SetRecorder attaches an additional reproduction recorder (e.g. a
// hardware trace) alongside the internal op counter.
func (r *Runner) SetRecorder(rec neat.Recorder) {
	r.extraRec = rec
	r.Pop.SetRecorder(neat.MultiRecorder(&r.opCounts, rec))
}

// evalResult carries one evaluation unit (a genome, or one of its
// episodes) back from a worker.
type evalResult struct {
	idx     int
	ep      int
	fitness float64
	steps   int64
	macs    int64
	updates int64
	err     error
}

// ensureWorkers grows the persistent pool to at least n slots, building
// each new slot's environment, shaper, and compile scratch once.
func (r *Runner) ensureWorkers(n int) error {
	for len(r.workers) < n {
		e, err := env.New(r.Workload.EnvName)
		if err != nil {
			return err
		}
		r.workers = append(r.workers, &evalWorker{
			env:     e,
			shaper:  r.Workload.NewShaper(),
			builder: new(network.Builder),
		})
	}
	return nil
}

// EvaluateGeneration scores every genome in the current population
// (steps 1–6 of the walkthrough), exploiting population-level
// parallelism with the persistent worker pool. It returns aggregate
// inference work. Dispatch stops as soon as ctx is cancelled — in-flight
// work finishes, queued work is never started, and ctx.Err() is
// returned — so an interrupt does not have to wait out a full
// generation of long episodes.
//
// By default evaluation runs through the tensorized batch engine
// (batch.go): same-topology genomes advance many episodes in lock-step
// through struct-of-arrays planes. Results are byte-identical to the
// reference serial semantics below (Scalar true), which remain the
// executable specification.
func (r *Runner) EvaluateGeneration(ctx context.Context) (envSteps, macs, updates int64, err error) {
	if err := ctx.Err(); err != nil {
		return 0, 0, 0, err
	}
	genomes := r.Pop.Genomes
	episodes := r.Workload.Episodes
	if episodes < 1 {
		episodes = 1
	}
	units := len(genomes) * episodes
	workers := r.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Evaluation is CPU-bound: workers beyond the scheduler's
	// processors cannot overlap and only add context switches.
	if mp := runtime.GOMAXPROCS(0); workers > mp {
		workers = mp
	}
	if workers > units {
		workers = units
	}
	if err := r.ensureWorkers(workers); err != nil {
		return 0, 0, 0, err
	}

	if !r.Scalar {
		return r.evaluateGenerationBatch(ctx, workers, episodes)
	}

	if workers == 1 {
		// Single-worker fast path: no goroutines, no channels — the
		// scheduler round-trips would be pure overhead on a one-core
		// budget. Still ctx-aware between genomes.
		w := r.workers[0]
		for _, g := range genomes {
			if err := ctx.Err(); err != nil {
				return 0, 0, 0, err
			}
			res := r.safeEvaluateGenome(w, g)
			if res.err != nil {
				return 0, 0, 0, res.err
			}
			g.Fitness = res.fitness
			envSteps += res.steps
			macs += res.macs
			updates += res.updates
		}
		r.phenos.Sweep()
		return envSteps, macs, updates, nil
	}

	// The parallel unit is one episode, not one genome: episodes are
	// independently seeded, so an elite's long episodes spread across
	// workers instead of forming a serial chain that bounds the whole
	// generation's wall time. Job j encodes (genome j/episodes,
	// episode j%episodes).
	jobs := make(chan int)
	results := make(chan evalResult, units)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wk := r.workers[w]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				res := r.safeEvaluateEpisode(wk, genomes[j/episodes], j%episodes)
				res.idx, res.ep = j/episodes, j%episodes
				results <- res
			}
		}()
	}
	// Dispatch expensive genomes first. A genome's carried-over fitness
	// is a cheap proxy for its episode length (elites survive longest),
	// and the wall time of a generation is bounded by whichever worker
	// drew the longest chain: sending the long episodes first keeps the
	// pool busy instead of idling behind a straggler dispatched last.
	// Evaluation order does not affect results — every episode is fully
	// determined by its (seed, generation, genome, episode) reset.
	order := r.dispatch[:0]
	for j := 0; j < units; j++ {
		order = append(order, j)
	}
	r.dispatch = order
	sort.SliceStable(order, func(a, b int) bool {
		return genomes[order[a]/episodes].Fitness > genomes[order[b]/episodes].Fitness
	})
dispatch:
	for _, j := range order {
		select {
		case <-ctx.Done():
			break dispatch
		case jobs <- j:
		}
	}
	close(jobs)
	wg.Wait()
	close(results)

	// Per-episode fitness lands in its (genome, episode) slot so the
	// mean below sums in episode order — the exact float additions the
	// serial evaluator performed.
	perEp := make([]float64, units)
	for res := range results {
		if res.err != nil {
			return 0, 0, 0, res.err
		}
		perEp[res.idx*episodes+res.ep] = res.fitness
		envSteps += res.steps
		macs += res.macs
		updates += res.updates
	}
	if err := ctx.Err(); err != nil {
		return 0, 0, 0, err
	}
	for i, g := range genomes {
		var total float64
		for ep := 0; ep < episodes; ep++ {
			total += perEp[i*episodes+ep]
		}
		g.Fitness = total / float64(episodes)
	}
	// Retire cache entries no live genome touched this generation.
	r.phenos.Sweep()
	return envSteps, macs, updates, nil
}

// PhenoCache exposes the runner's compiled-phenotype reuse cache
// (tests, diagnostics).
func (r *Runner) PhenoCache() *network.Cache { return &r.phenos }

// ReleaseEvalState drops the runner's evaluation machinery — the
// persistent worker pool with its environments, batch planes, lane
// sets, and network slots; the compiled-phenotype cache; and the
// dispatch/group scratch — while leaving the result surface (History,
// Pop, ScoreGenome, the trace already recorded) fully usable.
// Everything released here is rebuilt lazily if the runner evaluates
// again, so the only cost of calling it too eagerly is a warm-up
// generation. Long-lived caches of finished runs call this so a
// retained entry costs its history and population, not the whole
// evaluation engine: on a busy daemon the batch planes of hundreds of
// completed jobs would otherwise stay live and turn every GC cycle
// into a scan of dead scratch.
func (r *Runner) ReleaseEvalState() {
	r.workers = nil
	r.phenos.Reset()
	r.dispatch = nil
	r.perEpScratch = nil
	r.jobScratch = nil
	r.groupScratch = nil
	r.bucketIdx = nil
}

// ScoreGenome re-evaluates one genome on the runner's workload with
// the runner's deterministic episode seeds, without touching the
// population, the worker pool, or the phenotype cache — safe to call
// concurrently on a finished run whose artifacts are shared (the
// experiment harness's run cache hands one evolved runner to many
// figure generators). The returned fitness is exactly what
// EvaluateGeneration would assign the genome at the current generation
// boundary: the same per-(generation, genome, episode) seeds, episode
// fitnesses summed in episode order.
func (r *Runner) ScoreGenome(ctx context.Context, g *gene.Genome) (fitness float64, err error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	e, err := env.New(r.Workload.EnvName)
	if err != nil {
		return 0, err
	}
	defer func() {
		if p := recover(); p != nil {
			fitness, err = 0, fmt.Errorf("genome %d: evaluation panic: %v", g.ID, p)
		}
	}()
	net, err := new(network.Builder).Build(g)
	if err != nil {
		return 0, fmt.Errorf("genome %d: %w", g.ID, err)
	}
	res := r.runEpisodes(net, e, r.Workload.NewShaper(), g)
	return res.fitness, res.err
}

// safeEvaluateGenome is the whole-genome evaluation unit of the serial
// fast path: compile through the reuse cache, run every episode, with
// the same panic shield as the parallel workers.
func (r *Runner) safeEvaluateGenome(w *evalWorker, g *gene.Genome) (res evalResult) {
	defer func() {
		if p := recover(); p != nil {
			res = evalResult{err: fmt.Errorf("genome %d: evaluation panic: %v", g.ID, p)}
		}
	}()
	net, err := r.phenos.Get(w.builder, g)
	if err != nil {
		return evalResult{err: fmt.Errorf("genome %d: %w", g.ID, err)}
	}
	return r.runEpisodes(net, w.env, w.shaper, g)
}

// safeEvaluateEpisode shields the worker pool from a panicking fitness
// evaluation: the panic surfaces as that episode's evaluation error
// instead of unwinding the worker goroutine and killing the process. It
// compiles the genome through the reuse cache, so an unchanged elite
// costs two buffer allocations instead of a rebuild.
func (r *Runner) safeEvaluateEpisode(w *evalWorker, g *gene.Genome, ep int) (res evalResult) {
	defer func() {
		if p := recover(); p != nil {
			res = evalResult{err: fmt.Errorf("genome %d: evaluation panic: %v", g.ID, p)}
		}
	}()
	net, err := r.phenos.Get(w.builder, g)
	if err != nil {
		return evalResult{err: fmt.Errorf("genome %d: %w", g.ID, err)}
	}
	return r.runEpisode(net, w.env, w.shaper, g, ep)
}

// runEpisode scores one compiled phenotype over one workload episode.
// The inner step loop is allocation-free: Feed reuses the instance's
// output buffer and the environments reuse their observation buffers.
func (r *Runner) runEpisode(net *network.Network, e env.Env, shaper Shaper, g *gene.Genome, ep int) evalResult {
	// Deterministic per-(generation, genome, episode) seed.
	seed := r.seed ^ uint64(r.Pop.Generation)<<40 ^ uint64(g.ID)<<8 ^ uint64(ep)
	obs := e.Reset(seed)
	shaper.Reset()
	steps := 0
	for {
		action, ferr := net.Feed(obs)
		if ferr != nil {
			return evalResult{err: fmt.Errorf("genome %d: %w", g.ID, ferr)}
		}
		var reward float64
		var done bool
		obs, reward, done = e.Step(action)
		shaper.Observe(obs, reward)
		steps++
		if done {
			break
		}
	}
	var res evalResult
	res.fitness = shaper.Fitness(e, steps)
	// Per-step inference work is constant for a fixed phenotype, so the
	// ledger is a multiply per episode, not adds per step.
	res.steps = int64(steps)
	res.macs = int64(steps) * int64(net.NumEdges())
	res.updates = int64(steps) * int64(net.NumVertices()-net.NumInputs())
	return res
}

// runEpisodes scores one compiled phenotype over all of the workload's
// episodes serially — the single-genome path Lamarckian refinement uses.
func (r *Runner) runEpisodes(net *network.Network, e env.Env, shaper Shaper, g *gene.Genome) evalResult {
	var res evalResult
	var total float64
	episodes := r.Workload.Episodes
	if episodes < 1 {
		episodes = 1
	}
	for ep := 0; ep < episodes; ep++ {
		er := r.runEpisode(net, e, shaper, g, ep)
		if er.err != nil {
			return er
		}
		total += er.fitness
		res.steps += er.steps
		res.macs += er.macs
		res.updates += er.updates
	}
	res.fitness = total / float64(episodes)
	return res
}

// Step evaluates the current generation and, unless it solved the task,
// reproduces the next one. It appends and returns the generation's
// stats. A cancelled ctx aborts the evaluation between episodes and
// surfaces ctx.Err(); the population is left un-reproduced, so the
// generation re-evaluates deterministically on resume.
func (r *Runner) Step(ctx context.Context) (GenStats, error) {
	w := r.Workload
	evalStart := time.Now()
	envSteps, macs, updates, err := r.EvaluateGeneration(ctx)
	if err != nil {
		return GenStats{}, err
	}
	evalDur := time.Since(evalStart)

	best := r.Pop.Best()
	if r.TrackChampion {
		// Clone at the evaluation boundary: Epoch below may retire the
		// genome, and the exported champion must be the scored individual,
		// not a mutated descendant.
		r.champion = best.Clone()
	}
	nodes, conns := r.Pop.GeneComposition()
	st := GenStats{
		Generation:     r.Pop.Generation,
		MaxFitness:     best.Fitness,
		MeanFitness:    r.Pop.MeanFitness(),
		TotalGenes:     r.Pop.TotalGenes(),
		NodeGenes:      nodes,
		ConnGenes:      conns,
		FootprintBytes: r.Pop.FootprintBytes(),
		EnvSteps:       envSteps,
		InferenceMACs:  macs,
		VertexUpdates:  updates,
	}
	st.NormMax = w.Normalize(st.MaxFitness)
	st.NormMean = w.Normalize(st.MeanFitness)
	st.Solved = st.MaxFitness >= w.Target

	if len(r.Objectives) > 0 {
		// Pareto mode: rank the evaluated population and shape selection
		// from the NSGA-II total order. Stats above were already taken
		// from the task fitness, so records and Solved stay meaningful;
		// shaping is skipped on the final (solved) generation, whose
		// population is never reproduced.
		if err := r.applyPareto(!st.Solved); err != nil {
			return GenStats{}, err
		}
	}

	var speciateDur, reproduceDur time.Duration
	if !st.Solved {
		r.opCounts.Reset()
		// The epoch rides the same parallelism budget as the evaluation
		// pool: its distance pass fans out over bounded workers while
		// assignment and reproduction stay serial (outputs identical at
		// every setting).
		epochWorkers := r.Parallelism
		if mp := runtime.GOMAXPROCS(0); epochWorkers <= 0 || epochWorkers > mp {
			epochWorkers = mp
		}
		r.Pop.EpochParallelism = epochWorkers
		epochStart := time.Now()
		repro, err := r.Pop.Epoch()
		if err != nil {
			return GenStats{}, err
		}
		epochDur := time.Since(epochStart)
		speciateDur = repro.SpeciateDur
		reproduceDur = epochDur - speciateDur
		st.NumSpecies = repro.NumSpecies
		st.CrossoverOps = r.opCounts.Crossovers()
		st.MutationOps = r.opCounts.Mutations()
		st.FittestParentReuse = repro.FittestParentReuse
		st.MaxParentReuse = repro.MaxParentReuse
	}
	if r.Phases != nil {
		r.Phases.AddInt("generations", 1)
		r.Phases.AddInt("evaluate_ns", evalDur.Nanoseconds())
		r.Phases.AddInt("speciate_ns", speciateDur.Nanoseconds())
		r.Phases.AddInt("reproduce_ns", reproduceDur.Nanoseconds())
	}

	r.History = append(r.History, st)
	if r.Sink != nil {
		r.Sink.Record(hwsim.Record{
			Workload:   r.name,
			Generation: st.Generation,
			Report:     st.CounterReport(),
		})
	}
	return st, nil
}

// RequestCheckpoint asks a Run in progress to persist the population
// at the next generation boundary. It is the only checkpoint entry
// point that is safe to call from another goroutine while Run is
// executing: the save itself still happens on the Run goroutine,
// between Step calls, where the population is quiescent — so the
// written checkpoint is always a consistent boundary snapshot and the
// call is race-free by construction. A no-op when CheckpointPath is
// unset. This is what lets a serving layer checkpoint a live job on
// demand without stopping it.
func (r *Runner) RequestCheckpoint() { r.ckptReq.Store(true) }

// Run executes steps until the population reaches maxGenerations,
// stopping early when the target fitness is reached or ctx is
// cancelled. The loop is bounded by the population's own generation
// counter (not a local one), so a runner restored from a checkpoint
// continues where the interrupted run stopped rather than replaying
// the full budget. It reports whether the task was solved; a
// cancellation returns ctx.Err() after a final checkpoint (when
// checkpointing is configured), so the run can resume at the exact
// boundary it was cut at.
func (r *Runner) Run(ctx context.Context, maxGenerations int) (bool, error) {
	for r.Pop.Generation < maxGenerations {
		if err := ctx.Err(); err != nil {
			if r.CheckpointPath != "" {
				if serr := r.SaveCheckpoint(r.CheckpointPath); serr != nil {
					return false, errors.Join(err, serr)
				}
			}
			return false, err
		}
		st, err := r.Step(ctx)
		if err != nil {
			// A cancellation mid-evaluation leaves the population at the
			// same pre-Epoch boundary as the pre-step check above (the
			// PRNG is untouched during evaluation), so the checkpoint
			// resumes bit-identically by re-evaluating the generation.
			if cerr := ctx.Err(); cerr != nil && errors.Is(err, cerr) && r.CheckpointPath != "" {
				if serr := r.SaveCheckpoint(r.CheckpointPath); serr != nil {
					return false, errors.Join(err, serr)
				}
			}
			return false, err
		}
		if st.Solved {
			return true, nil
		}
		periodic := r.CheckpointEvery > 0 && r.Pop.Generation%r.CheckpointEvery == 0
		requested := r.ckptReq.Swap(false)
		if r.CheckpointPath != "" && (periodic || requested) {
			if err := r.SaveCheckpoint(r.CheckpointPath); err != nil {
				return false, fmt.Errorf("checkpoint: %w", err)
			}
		}
	}
	return false, nil
}

// SaveCheckpoint atomically persists the population state: the JSON is
// written to a temp file in the target directory and renamed over
// path, so an interrupted save leaves the previous checkpoint intact.
func (r *Runner) SaveCheckpoint(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := r.Pop.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// RestoreCheckpoint replaces the runner's population with the state
// saved at path and rewires the reproduction recorders. Because the
// checkpoint carries the PRNG stream and evaluation seeds derive from
// (runner seed, generation, genome, episode), the restored run
// continues bit-identically to the uninterrupted one.
func (r *Runner) RestoreCheckpoint(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return r.RestoreFrom(f)
}

// RestoreFrom is RestoreCheckpoint over any reader — the seam the
// persistent run store uses to rehydrate a committed run's population
// without a checkpoint file on disk.
func (r *Runner) RestoreFrom(src io.Reader) error {
	pop, err := neat.Restore(src, r.seed)
	if err != nil {
		return err
	}
	r.Pop = pop
	if r.extraRec != nil {
		pop.SetRecorder(neat.MultiRecorder(&r.opCounts, r.extraRec))
	} else {
		pop.SetRecorder(&r.opCounts)
	}
	return nil
}

// Champion returns the clone of the best genome at the most recent
// evaluated generation, or nil when TrackChampion is off or no
// generation has been evaluated. The returned genome is owned by the
// caller — Step replaces the runner's copy rather than mutating it.
func (r *Runner) Champion() *gene.Genome { return r.champion }

// Last returns the most recent generation stats (zero value if none).
func (r *Runner) Last() GenStats {
	if len(r.History) == 0 {
		return GenStats{}
	}
	return r.History[len(r.History)-1]
}
