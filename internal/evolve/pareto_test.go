package evolve

import (
	"context"
	"encoding/json"
	"testing"

	"repro/internal/hw/hwsim"
	"repro/internal/moea"
)

// TestRunParetoDeterministicAcrossShapes pins the Pareto mode's core
// guarantee: the whole run — history and front — is byte-identical at
// any Parallelism/BatchWidth and on the scalar reference path, because
// objective values are pure functions of the deterministic evaluation
// and the NSGA-II assignment is serial with a strict total order.
func TestRunParetoDeterministicAcrossShapes(t *testing.T) {
	base := ParetoSpec{
		Workload:    "cartpole",
		Population:  32,
		Generations: 5,
		Seed:        7,
		Objectives:  DefaultParetoObjectives(),
	}
	shapes := []struct {
		name        string
		parallelism int
		batchWidth  int
		scalar      bool
	}{
		{"serial-scalar", 1, 0, true},
		{"parallel-batch", 4, 0, false},
		{"parallel-narrow", 3, 2, false},
	}
	var want []byte
	for _, sh := range shapes {
		spec := base
		spec.Parallelism = sh.parallelism
		spec.BatchWidth = sh.batchWidth
		run, err := runParetoShaped(t, spec, sh.scalar)
		if err != nil {
			t.Fatalf("%s: %v", sh.name, err)
		}
		raw, err := json.Marshal(run)
		if err != nil {
			t.Fatalf("%s: marshal: %v", sh.name, err)
		}
		if want == nil {
			want = raw
			if len(run.Front) == 0 {
				t.Fatalf("%s: empty front", sh.name)
			}
			continue
		}
		if string(raw) != string(want) {
			t.Fatalf("%s: run diverged from %s", sh.name, shapes[0].name)
		}
	}
}

// runParetoShaped is RunPareto with the test-only Scalar knob exposed.
func runParetoShaped(t *testing.T, spec ParetoSpec, scalar bool) (*ParetoRun, error) {
	t.Helper()
	if !scalar {
		return RunPareto(context.Background(), spec)
	}
	// Mirror RunPareto but force the scalar reference evaluator.
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	r, err := newParetoRunner(spec)
	if err != nil {
		return nil, err
	}
	r.Scalar = true
	solved, err := r.Run(context.Background(), spec.Generations)
	if err != nil {
		return nil, err
	}
	last := r.Last()
	return &ParetoRun{
		Workload:    spec.Workload,
		Population:  spec.Population,
		Generations: spec.Generations,
		Seed:        spec.Seed,
		Objectives:  spec.Objectives,
		Solved:      solved,
		BestFitness: last.MaxFitness,
		History:     r.History,
		Front:       r.Front(),
	}, nil
}

// TestParetoFrontIsNonDominated re-derives the objective vector of
// every front genome from its decoded wire form and checks mutual
// non-domination plus value consistency.
func TestParetoFrontIsNonDominated(t *testing.T) {
	run, err := RunPareto(context.Background(), ParetoSpec{
		Workload:    "mountaincar",
		Population:  24,
		Generations: 4,
		Seed:        11,
		Objectives:  DefaultParetoObjectives(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Front) == 0 {
		t.Fatal("empty front")
	}
	objs, err := ResolveObjectives(run.Objectives)
	if err != nil {
		t.Fatal(err)
	}
	pts := make([]moea.Point, len(run.Front))
	for i, p := range run.Front {
		vals := make([]float64, len(run.Objectives))
		for m, name := range run.Objectives {
			v, ok := p.Values[name]
			if !ok {
				t.Fatalf("front point %d missing objective %q", i, name)
			}
			vals[m] = v
		}
		pts[i] = moea.Point{ID: p.GenomeID, Values: vals}
		// Structural objectives must match the genome wire form.
		var g struct {
			ID int64 `json:"ID"`
		}
		if err := json.Unmarshal(p.Genome, &g); err != nil {
			t.Fatalf("front point %d: decode genome: %v", i, err)
		}
		if g.ID != p.GenomeID {
			t.Fatalf("front point %d: genome ID %d != point ID %d", i, g.ID, p.GenomeID)
		}
	}
	res := moea.Sort(pts, objs)
	if len(res.Fronts) != 1 {
		t.Fatalf("stored front is not mutually non-dominating: %d sub-fronts", len(res.Fronts))
	}
}

// TestReplayParetoRecordsMatchesLive pins the wire contract: a live
// run's record stream (history via Sink, then FrontRecords) is
// byte-identical to ReplayParetoRecords over the stored run.
func TestReplayParetoRecordsMatchesLive(t *testing.T) {
	spec := ParetoSpec{
		Workload:    "cartpole",
		Population:  16,
		Generations: 3,
		Seed:        5,
		Objectives:  []string{"fitness", "energy"},
	}
	var live recordLog
	liveSpec := spec
	liveSpec.Sink = &live
	run, err := RunPareto(context.Background(), liveSpec)
	if err != nil {
		t.Fatal(err)
	}
	FrontRecords(run, &live)

	var replay recordLog
	ReplayParetoRecords(run, &replay)

	if len(live.recs) != len(replay.recs) {
		t.Fatalf("live %d records, replay %d", len(live.recs), len(replay.recs))
	}
	for i := range live.recs {
		a, _ := json.Marshal(live.recs[i])
		b, _ := json.Marshal(replay.recs[i])
		if string(a) != string(b) {
			t.Fatalf("record %d diverged:\nlive   %s\nreplay %s", i, a, b)
		}
	}
	// Front records must continue the generation sequence monotonically.
	lastGen := -1
	for _, rec := range replay.recs {
		if rec.Generation <= lastGen {
			t.Fatalf("generation sequence not monotonic at %d (prev %d, workload %s)", rec.Generation, lastGen, rec.Workload)
		}
		lastGen = rec.Generation
	}
}

type recordLog struct{ recs []hwsim.Record }

func (l *recordLog) Record(r hwsim.Record) { l.recs = append(l.recs, r) }

// TestResolveObjectivesRejects exercises the validation paths.
func TestResolveObjectivesRejects(t *testing.T) {
	for _, bad := range [][]string{
		nil,
		{"fitness"},
		{"fitness", "nope"},
		{"fitness", "fitness"},
	} {
		if _, err := ResolveObjectives(bad); err == nil {
			t.Errorf("ResolveObjectives(%v) accepted", bad)
		}
	}
	if _, err := ResolveObjectives([]string{"genes", "energy"}); err != nil {
		t.Errorf("valid subset rejected: %v", err)
	}
}
