package evolve

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/env"
	"repro/internal/network"
)

// This file is the batch-grained dispatch of EvaluateGeneration: the
// software realization of the paper's population-level parallelism.
// Instead of evaluating one (genome, episode) at a time, the runner
//
//  1. compiles every genome through the phenotype cache and groups the
//     population by topology (TopoKey + structural confirmation) —
//     NEAT populations are weight-mutation dominated, so groups are
//     large;
//  2. turns each group's (genome, episode) units into batch jobs of up
//     to BatchWidth lanes, loads lanes with per-genome parameters, and
//     advances network + environment in lock-step through
//     struct-of-arrays planes;
//  3. retires a lane the step its episode finishes — backfilling the
//     next unit in place while units remain, then compacting the lane
//     out of the active prefix with swap-retire — so no lane ever
//     computes a dead episode.
//
// Every lane performs exactly the float and RNG operations of the
// reference scalar path in the same order, episode fitness lands in
// per-(genome, episode) slots, and the final mean sums in episode
// order: results are byte-identical to Scalar mode (pinned by
// differential_test.go).

// defaultBatchWidth is the lane cap when Runner.BatchWidth is unset:
// wide enough to keep the 4-lane vector exp kernel and plane streaming
// effective, small enough that per-worker planes stay cache-resident.
const defaultBatchWidth = 64

// minBatchUnits is the smallest group worth loading into the batch
// engine; below it the scalar path is cheaper than lane setup.
const minBatchUnits = 2

// batchWidthFor fits the lane width to a job's unit count: small
// groups get a dense plane (units rounded up to the 4-lane vector
// quantum, so rows stay contiguous and the exp kernel stays engaged)
// instead of rattling around a max-width one.
func batchWidthFor(units, max int) int {
	if units >= max {
		return max
	}
	w := (units + 3) &^ 3
	if w > max {
		return max
	}
	return w
}

// laneSet is one width-class of batch rollout state: a vectorized
// environment plus the per-lane planes and bookkeeping the scheduler
// threads through it. Workers keep one per width (at most max/4 + 1,
// in practice a handful), so steady-state generations allocate
// nothing.
type laneSet struct {
	be        env.Batch
	shapers   []Shaper  // one per lane, Reset per episode
	obsPlane  []float64 // [obsRow][lane] struct-of-arrays plane
	actPlane  []float64 // [actRow][lane]
	rew       []float64 // per-lane step reward
	done      []bool    // per-lane episode-over flags
	laneSteps []int     // per-lane step counters
	laneUnit  []int     // per-lane unit index within the running group
	// cums mirrors shapers when the workload shaper is the plain
	// cumulative-reward accumulator, hoisting the per-lane-per-step
	// type assertion (and the observation gather it doesn't need) out
	// of the hot loop. nil for any other shaper type.
	cums []*cumReward
}

// netSlot is one cached (BatchProgram, BatchState) pair for a
// (phenotype topology, width) class, reused across generations while
// the topology survives in the population.
type netSlot struct {
	exemplar network.Program
	width    int
	bp       *network.BatchProgram
	st       *network.BatchState
	used     bool
}

// evalGroup is one topology class of the current population.
type evalGroup struct {
	exemplar network.Program
	members  []int             // population indices, ascending
	progs    []network.Program // compiled program per member
}

// batchJob is one dispatch unit: either a lane-range of a group's
// episode units, or a single scalar (genome, episode) evaluation for
// groups too small to batch.
type batchJob struct {
	group  int // -1 for scalar jobs
	lo, hi int // unit range within the group (batch jobs)
	gIdx   int // population index (scalar jobs)
	ep     int // episode (scalar jobs)
	weight float64
}

// chunkResult carries one job's work ledger back to the dispatcher.
type chunkResult struct {
	steps   int64
	macs    int64
	updates int64
	err     error
}

// evaluateGenerationBatch is the batch-engine body of
// EvaluateGeneration. Workers and episode counts were resolved by the
// caller; ctx was already checked once.
func (r *Runner) evaluateGenerationBatch(ctx context.Context, workers, episodes int) (envSteps, macs, updates int64, err error) {
	genomes := r.Pop.Genomes
	width := r.BatchWidth
	if width <= 0 {
		width = defaultBatchWidth
	}

	groups, err := r.formGroups()
	if err != nil {
		return 0, 0, 0, err
	}
	jobs := r.makeJobs(groups, width, workers, episodes)
	// Every (genome, episode) slot is written exactly once before the
	// mean below reads it, so the scratch needs no zeroing.
	need := len(genomes) * episodes
	if cap(r.perEpScratch) < need {
		r.perEpScratch = make([]float64, need)
	}
	perEp := r.perEpScratch[:need]

	if workers == 1 {
		// Single-worker fast path: no goroutines, no channels; jobs run
		// in LPT order with a cancellation check between jobs.
		w := r.workers[0]
		w.ensureBatch()
		for _, jb := range jobs {
			if err := ctx.Err(); err != nil {
				return 0, 0, 0, err
			}
			cr := r.runJob(w, jb, groups, perEp, width, episodes)
			if cr.err != nil {
				return 0, 0, 0, cr.err
			}
			envSteps += cr.steps
			macs += cr.macs
			updates += cr.updates
		}
	} else {
		for i := 0; i < workers; i++ {
			r.workers[i].ensureBatch()
		}
		jobCh := make(chan batchJob)
		results := make(chan chunkResult, len(jobs))
		var wg sync.WaitGroup
		for i := 0; i < workers; i++ {
			w := r.workers[i]
			wg.Add(1)
			go func() {
				defer wg.Done()
				for jb := range jobCh {
					results <- r.runJob(w, jb, groups, perEp, width, episodes)
				}
			}()
		}
	dispatch:
		for _, jb := range jobs {
			select {
			case <-ctx.Done():
				break dispatch
			case jobCh <- jb:
			}
		}
		close(jobCh)
		wg.Wait()
		close(results)
		for cr := range results {
			if cr.err != nil {
				return 0, 0, 0, cr.err
			}
			envSteps += cr.steps
			macs += cr.macs
			updates += cr.updates
		}
		if err := ctx.Err(); err != nil {
			return 0, 0, 0, err
		}
	}

	// Mean per genome, summing in episode order — the exact float
	// additions of the reference path.
	for i, g := range genomes {
		var total float64
		for ep := 0; ep < episodes; ep++ {
			total += perEp[i*episodes+ep]
		}
		g.Fitness = total / float64(episodes)
	}
	r.phenos.Sweep()
	for _, w := range r.workers {
		w.sweepNetSlots()
	}
	return envSteps, macs, updates, nil
}

// formGroups compiles the population (through the phenotype cache) and
// partitions it into topology classes.
func (r *Runner) formGroups() ([]evalGroup, error) {
	genomes := r.Pop.Genomes
	builder := r.workers[0].builder
	// The group scratch (outer slice and each group's member slices) is
	// reused across generations; n counts the groups live this one. The
	// tail beyond n keeps last generation's Program handles alive until
	// the slots are reused — bounded by the peak group count, the price
	// of allocation-free steady state.
	groups := r.groupScratch
	n := 0
	if r.bucketIdx == nil {
		r.bucketIdx = make(map[uint64][]int, 16)
	}
	buckets := r.bucketIdx
	clear(buckets)
	for gi, g := range genomes {
		pr, err := r.phenos.GetProgram(builder, g)
		if err != nil {
			return nil, fmt.Errorf("genome %d: %w", g.ID, err)
		}
		h := pr.TopoKey()
		placed := false
		for _, idx := range buckets[h] {
			if groups[idx].exemplar.SameTopology(pr) {
				groups[idx].members = append(groups[idx].members, gi)
				groups[idx].progs = append(groups[idx].progs, pr)
				placed = true
				break
			}
		}
		if !placed {
			buckets[h] = append(buckets[h], n)
			if n < len(groups) {
				g := &groups[n]
				g.exemplar = pr
				g.members = append(g.members[:0], gi)
				g.progs = append(g.progs[:0], pr)
			} else {
				groups = append(groups, evalGroup{
					exemplar: pr,
					members:  []int{gi},
					progs:    []network.Program{pr},
				})
			}
			n++
		}
	}
	r.groupScratch = groups
	return groups[:n], nil
}

// batchable reports whether a group can run through the batch engine:
// enough units to amortize lane setup, and network IO planes that line
// up with the environment's observation/action planes.
func (r *Runner) batchable(g *evalGroup, episodes int) bool {
	e := r.workers[0].env
	return len(g.members)*episodes >= minBatchUnits &&
		g.exemplar.NumInputs() == e.ObservationSize() &&
		g.exemplar.NumOutputs() == e.ActionSize()
}

// makeJobs turns topology groups into an LPT-ordered job list. Batch
// groups are split into lane-range chunks only as far as parallel
// balance requires (a chunk never drops below one full batch width, so
// backfill keeps lanes busy); the previous generation's fitness is the
// episode-length proxy, exactly as the scalar LPT used it.
func (r *Runner) makeJobs(groups []evalGroup, width, workers, episodes int) []batchJob {
	genomes := r.Pop.Genomes
	totalUnits := 0
	for gi := range groups {
		if r.batchable(&groups[gi], episodes) {
			totalUnits += len(groups[gi].members) * episodes
		}
	}
	chunkSize := totalUnits
	if workers > 1 {
		chunkSize = (totalUnits + workers*2 - 1) / (workers * 2)
	}
	if chunkSize < width {
		chunkSize = width
	}

	jobs := r.jobScratch[:0]
	for gi := range groups {
		g := &groups[gi]
		if !r.batchable(g, episodes) {
			for _, pi := range g.members {
				for ep := 0; ep < episodes; ep++ {
					jobs = append(jobs, batchJob{
						group: -1, gIdx: pi, ep: ep,
						weight: genomes[pi].Fitness,
					})
				}
			}
			continue
		}
		units := len(g.members) * episodes
		for lo := 0; lo < units; lo += chunkSize {
			hi := lo + chunkSize
			if hi > units {
				hi = units
			}
			var sum float64
			for u := lo; u < hi; u++ {
				sum += genomes[g.members[u/episodes]].Fitness
			}
			jobs = append(jobs, batchJob{group: gi, lo: lo, hi: hi, weight: sum})
		}
	}
	sort.SliceStable(jobs, func(a, b int) bool { return jobs[a].weight > jobs[b].weight })
	r.jobScratch = jobs
	return jobs
}

// runJob executes one dispatch unit on one worker.
func (r *Runner) runJob(w *evalWorker, jb batchJob, groups []evalGroup, perEp []float64, width, episodes int) chunkResult {
	if jb.group < 0 {
		g := r.Pop.Genomes[jb.gIdx]
		res := r.safeEvaluateEpisode(w, g, jb.ep)
		if res.err != nil {
			return chunkResult{err: res.err}
		}
		perEp[jb.gIdx*episodes+jb.ep] = res.fitness
		return chunkResult{steps: res.steps, macs: res.macs, updates: res.updates}
	}
	return r.safeRunBatchRange(w, &groups[jb.group], jb.lo, jb.hi, perEp, width, episodes)
}

// ensureBatch initializes the worker's batch bookkeeping (idempotent;
// lane sets and net slots themselves are built lazily per width).
func (w *evalWorker) ensureBatch() {
	if w.netSlots == nil {
		w.netSlots = make(map[uint64][]*netSlot)
		w.laneSets = make(map[int]*laneSet)
		w.obsCol = make([]float64, w.env.ObservationSize())
	}
}

// ensureLaneSet returns the worker's rollout state for one lane width,
// building it on first sight and reusing it forever after (widths are
// quantized, so the map stays a handful of entries).
func (w *evalWorker) ensureLaneSet(r *Runner, width int) (*laneSet, error) {
	if ls := w.laneSets[width]; ls != nil {
		return ls, nil
	}
	be, err := env.NewBatch(r.Workload.EnvName, width)
	if err != nil {
		return nil, err
	}
	ls := &laneSet{
		be:        be,
		shapers:   make([]Shaper, width),
		obsPlane:  make([]float64, be.ObservationSize()*width),
		actPlane:  make([]float64, be.ActionSize()*width),
		rew:       make([]float64, width),
		done:      make([]bool, width),
		laneSteps: make([]int, width),
		laneUnit:  make([]int, width),
	}
	for i := range ls.shapers {
		ls.shapers[i] = r.Workload.NewShaper()
	}
	cums := make([]*cumReward, width)
	for i, sh := range ls.shapers {
		c, ok := sh.(*cumReward)
		if !ok {
			cums = nil
			break
		}
		cums[i] = c
	}
	ls.cums = cums
	w.laneSets[width] = ls
	return ls, nil
}

// ensureNetSlot returns the worker's cached batch evaluator for the
// group's topology at the given width, building one on first sight.
func (w *evalWorker) ensureNetSlot(exemplar network.Program, width int) *netSlot {
	h := exemplar.TopoKey()
	for _, s := range w.netSlots[h] {
		if s.width == width && s.exemplar.SameTopology(exemplar) {
			s.used = true
			return s
		}
	}
	bp := network.NewBatch(exemplar, width)
	s := &netSlot{exemplar: exemplar, width: width, bp: bp, st: bp.NewState(), used: true}
	w.netSlots[h] = append(w.netSlots[h], s)
	return s
}

// sweepNetSlots drops slots whose (topology, width) went extinct this
// generation, mirroring the phenotype cache's sweep.
func (w *evalWorker) sweepNetSlots() {
	for h, slots := range w.netSlots {
		kept := slots[:0]
		for _, s := range slots {
			if s.used {
				s.used = false
				kept = append(kept, s)
			}
		}
		if len(kept) == 0 {
			delete(w.netSlots, h)
		} else {
			w.netSlots[h] = kept
		}
	}
}

// safeRunBatchRange shields the dispatcher from a panicking fitness
// evaluation inside a batch, as safeEvaluateEpisode does for the
// scalar path.
func (r *Runner) safeRunBatchRange(w *evalWorker, grp *evalGroup, lo, hi int, perEp []float64, width, episodes int) (cr chunkResult) {
	defer func() {
		if p := recover(); p != nil {
			g := r.Pop.Genomes[grp.members[lo/episodes]]
			cr = chunkResult{err: fmt.Errorf("genome %d (batch): evaluation panic: %v", g.ID, p)}
		}
	}()
	return r.runBatchRange(w, grp, lo, hi, perEp, width, episodes)
}

// swapPlaneCols exchanges two lane columns of a struct-of-arrays plane.
func swapPlaneCols(plane []float64, width, rows, a, b int) {
	for rw := 0; rw < rows; rw++ {
		plane[rw*width+a], plane[rw*width+b] = plane[rw*width+b], plane[rw*width+a]
	}
}

// loadLane loads one (genome, episode) unit into a lane: parameters
// into the batch program, a deterministic reset into the environment
// lane, a fresh shaper. The episode seed is the reference formula —
// schedule-independent, so any lane assignment reproduces the scalar
// stream exactly.
func (r *Runner) loadLane(ls *laneSet, bp *network.BatchProgram, obsPlane []float64, grp *evalGroup, lane, unit, episodes int) error {
	mi, ep := unit/episodes, unit%episodes
	g := r.Pop.Genomes[grp.members[mi]]
	if err := bp.SetLane(lane, grp.progs[mi]); err != nil {
		return fmt.Errorf("genome %d: %w", g.ID, err)
	}
	seed := r.seed ^ uint64(r.Pop.Generation)<<40 ^ uint64(g.ID)<<8 ^ uint64(ep)
	ls.be.ResetLane(lane, seed, obsPlane)
	ls.shapers[lane].Reset()
	ls.laneSteps[lane] = 0
	ls.laneUnit[lane] = unit
	ls.done[lane] = false
	return nil
}

// runBatchRange advances units [lo, hi) of one topology group through
// the batch engine: fill lanes, lock-step feed + env step, retire and
// backfill in place, compact with swap-retire when units run dry.
func (r *Runner) runBatchRange(w *evalWorker, grp *evalGroup, lo, hi int, perEp []float64, maxWidth, episodes int) (cr chunkResult) {
	width := batchWidthFor(hi-lo, maxWidth)
	ls, err := w.ensureLaneSet(r, width)
	if err != nil {
		return chunkResult{err: err}
	}
	slot := w.ensureNetSlot(grp.exemplar, width)
	bp, st := slot.bp, slot.st
	be := ls.be
	obsRows := be.ObservationSize()
	// When the program's inputs are the position prefix (every NEAT
	// genome), the observation plane aliases the batch state's input
	// rows: environment resets and steps write activations in place and
	// FeedBatchInto skips its ingest copy.
	obsPlane := ls.obsPlane
	if alias := bp.ObsPlane(st); alias != nil {
		obsPlane = alias
	}

	active, next := 0, lo
	for active < width && next < hi {
		if err := r.loadLane(ls, bp, obsPlane, grp, active, next, episodes); err != nil {
			return chunkResult{err: err}
		}
		active++
		next++
	}
	edges := int64(bp.NumEdges())
	verts := int64(bp.NumVertices() - bp.NumInputs())

	for active > 0 {
		if err := bp.FeedBatchInto(st, ls.actPlane, obsPlane, active); err != nil {
			return chunkResult{err: err}
		}
		be.StepAll(obsPlane, ls.rew, ls.done, ls.actPlane, active)
		anyDone := false
		if ls.cums != nil {
			// Inlined cumReward.Observe: the same single addition,
			// without gathering an observation column it ignores. The
			// done check rides along so quiet steps (no lane finished,
			// the common case) skip the retire sweep entirely.
			cums, rews := ls.cums[:active], ls.rew[:active]
			steps, dn := ls.laneSteps[:active], ls.done[:active]
			for lane := range cums {
				cums[lane].total += rews[lane]
				steps[lane]++
				if dn[lane] {
					anyDone = true
				}
			}
		} else {
			for lane := 0; lane < active; lane++ {
				for rw := 0; rw < obsRows; rw++ {
					w.obsCol[rw] = obsPlane[rw*width+lane]
				}
				ls.shapers[lane].Observe(w.obsCol, ls.rew[lane])
				ls.laneSteps[lane]++
				if ls.done[lane] {
					anyDone = true
				}
			}
		}
		if !anyDone {
			continue
		}
		// Retire finished lanes. Descending, so a swap-retire pulls in
		// a lane this sweep has already visited.
		for lane := active - 1; lane >= 0; lane-- {
			if !ls.done[lane] {
				continue
			}
			unit := ls.laneUnit[lane]
			mi, ep := unit/episodes, unit%episodes
			steps := ls.laneSteps[lane]
			fit := ls.shapers[lane].Fitness(be.LaneEnv(lane), steps)
			perEp[grp.members[mi]*episodes+ep] = fit
			cr.steps += int64(steps)
			cr.macs += int64(steps) * edges
			cr.updates += int64(steps) * verts
			if next < hi {
				if err := r.loadLane(ls, bp, obsPlane, grp, lane, next, episodes); err != nil {
					return chunkResult{err: err}
				}
				next++
				continue
			}
			last := active - 1
			if lane != last {
				bp.SwapLanes(lane, last)
				be.SwapLanes(lane, last)
				swapPlaneCols(obsPlane, width, obsRows, lane, last)
				ls.shapers[lane], ls.shapers[last] = ls.shapers[last], ls.shapers[lane]
				if ls.cums != nil {
					ls.cums[lane], ls.cums[last] = ls.cums[last], ls.cums[lane]
				}
				ls.laneSteps[lane], ls.laneSteps[last] = ls.laneSteps[last], ls.laneSteps[lane]
				ls.laneUnit[lane], ls.laneUnit[last] = ls.laneUnit[last], ls.laneUnit[lane]
				ls.done[lane], ls.done[last] = ls.done[last], ls.done[lane]
			}
			active--
		}
	}
	return cr
}
