package evolve

import (
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/gene"
	"repro/internal/hw/energy"
	"repro/internal/hw/hwsim"
	"repro/internal/moea"
	"repro/internal/neat"
)

// This file is the Pareto (multi-objective) run mode: instead of
// selecting on a single scalar fitness, each generation is ranked by
// the NSGA-II machinery of internal/moea over a pluggable objective
// vector, and the run's product is a Pareto front rather than a single
// champion. The design rules that keep it deterministic mirror the
// island model above:
//
//  1. Objective values are pure functions of (evaluated genome): the
//     task fitness the evaluator just assigned, the genome's gene
//     count, and a structural energy price from the Default15nm
//     technology constants. Nothing host- or schedule-dependent enters
//     the vector, so Parallelism/BatchWidth remain execution-shape.
//  2. The NSGA-II assignment is serial with a strict total order
//     (rank, then crowding, then genome ID — see package moea), and
//     selection pressure is applied by re-writing each genome's
//     scalar fitness from its position in that order. NEAT
//     reproduction then follows the multi-objective order exactly,
//     with no changes to the epoch kernel.
//  3. Front genomes cross layer boundaries only as JSON
//     (ParetoPoint.Genome is a json.RawMessage), like island
//     champions, so stored artifacts replay byte-identically.

// paretoObjective couples a moea axis with its genome pricing
// function, evaluated post-fitness-assignment.
type paretoObjective struct {
	obj   moea.Objective
	value func(*gene.Genome) float64
}

// paretoObjectives is the registry of supported objective axes.
var paretoObjectives = map[string]paretoObjective{
	"fitness": {
		obj:   moea.Objective{Name: "fitness", Maximize: true},
		value: func(g *gene.Genome) float64 { return g.Fitness },
	},
	"genes": {
		obj:   moea.Objective{Name: "genes"},
		value: func(g *gene.Genome) float64 { return float64(g.NumGenes()) },
	},
	"energy": {
		obj:   moea.Objective{Name: "energy"},
		value: GenomeEnergyPJ,
	},
}

// DefaultParetoObjectives is the canonical three-axis vector: task
// fitness up, genome complexity down, simulated chip energy down.
func DefaultParetoObjectives() []string { return []string{"fitness", "genes", "energy"} }

// ParetoObjectiveNames lists every supported objective axis, in
// canonical order.
func ParetoObjectiveNames() []string { return []string{"fitness", "genes", "energy"} }

// ResolveObjectives validates a requested objective vector (known
// names, no duplicates, at least two axes — one axis is the scalar
// path) and returns the moea descriptors in request order. Request
// order is part of the run identity: it fixes the lexicographic
// pre-sort and the crowding accumulation order.
func ResolveObjectives(names []string) ([]moea.Objective, error) {
	if len(names) < 2 {
		return nil, fmt.Errorf("pareto: need at least 2 objectives, have %d", len(names))
	}
	out := make([]moea.Objective, 0, len(names))
	seen := map[string]bool{}
	for _, n := range names {
		def, ok := paretoObjectives[n]
		if !ok {
			return nil, fmt.Errorf("pareto: unknown objective %q (have %v)", n, ParetoObjectiveNames())
		}
		if seen[n] {
			return nil, fmt.Errorf("pareto: duplicate objective %q", n)
		}
		seen[n] = true
		out = append(out, def.obj)
	}
	return out, nil
}

// GenomeEnergyPJ prices a genome's simulated per-step chip cost in
// picojoules from the Default15nm technology constants — a pure
// structural function (no step counts, no wall clock), so Pareto runs
// stay deterministic: every enabled connection costs one systolic MAC
// plus one NoC hop, and every gene costs one 64-bit SRAM fetch plus
// one EvE pipeline operation per reproduction pass.
func GenomeEnergyPJ(g *gene.Genome) float64 {
	tech := energy.Default15nm()
	conns := float64(len(g.EnabledConns()))
	genes := float64(g.NumGenes())
	return conns*(tech.EMAC+tech.ENoCHop) + genes*(tech.ESRAMAccess+tech.EEvEOp)
}

// ParetoPoint is one member of a Pareto front in wire form: the
// genome's objective values, its crowding distance within the front,
// and the genome itself as JSON (exact float64 round-trip, like
// island Champions).
type ParetoPoint struct {
	GenomeID int64              `json:"genome_id"`
	Values   map[string]float64 `json:"values"`
	Crowding float64            `json:"crowding"`
	Genome   json.RawMessage    `json:"genome,omitempty"`
}

// applyPareto runs the NSGA-II assignment over the just-evaluated
// population: snapshots the rank-0 front (in total order) and, when
// the task is not yet solved, rewrites each genome's scalar fitness
// from its position in the total order so the NEAT epoch reproduces
// along the multi-objective ranking. Called by Step between stats
// collection (task fitness) and reproduction.
func (r *Runner) applyPareto(shape bool) error {
	objs, err := ResolveObjectives(r.Objectives)
	if err != nil {
		return err
	}
	genomes := r.Pop.Genomes
	points := make([]moea.Point, len(genomes))
	for i, g := range genomes {
		vals := make([]float64, len(r.Objectives))
		for m, name := range r.Objectives {
			vals[m] = paretoObjectives[name].value(g)
		}
		points[i] = moea.Point{ID: g.ID, Values: vals}
	}
	if err := moea.Validate(points, objs); err != nil {
		return err
	}
	res := moea.Sort(points, objs)

	front := make([]ParetoPoint, 0, len(res.Fronts[0]))
	for _, i := range res.Fronts[0] {
		raw, merr := json.Marshal(genomes[i])
		if merr != nil {
			return fmt.Errorf("pareto: encode front genome %d: %w", genomes[i].ID, merr)
		}
		vals := make(map[string]float64, len(r.Objectives))
		for m, name := range r.Objectives {
			vals[name] = points[i].Values[m]
		}
		front = append(front, ParetoPoint{
			GenomeID: genomes[i].ID,
			Values:   vals,
			Crowding: res.Crowding[i],
			Genome:   raw,
		})
	}
	r.front = front

	if shape {
		n := len(res.Order)
		for pos, i := range res.Order {
			genomes[i].Fitness = float64(n - pos)
		}
	}
	return nil
}

// Front returns the Pareto front of the most recently evaluated
// generation (nil outside Pareto mode). Points are in the moea total
// order; the slice is owned by the runner and replaced every Step.
func (r *Runner) Front() []ParetoPoint { return r.front }

// ParetoSpec describes one Pareto-mode run. The identity tuple is
// (workload, population, generations, seed, objectives — order
// included); Parallelism/BatchWidth are execution-shape only.
type ParetoSpec struct {
	Workload    string
	Population  int
	Generations int
	Seed        uint64
	// Objectives is the objective vector in identity order; see
	// ResolveObjectives.
	Objectives []string

	Parallelism int
	BatchWidth  int
	// Phases, when set, receives the runner's per-phase wall-clock
	// counters (see Runner.Phases) — live metrics only, never part of
	// the result.
	Phases *hwsim.Counters
	// Sink, when set, receives the live per-generation record stream
	// (task-fitness GenStats, exactly as a scalar run emits them).
	// Front records are not emitted here; see FrontRecords.
	Sink hwsim.Sink
}

// Validate reports spec errors before any population is built.
func (s ParetoSpec) Validate() error {
	switch {
	case s.Population < 2:
		return fmt.Errorf("pareto: population %d must be at least 2", s.Population)
	case s.Generations < 1:
		return fmt.Errorf("pareto: generations %d must be positive", s.Generations)
	}
	if _, err := WorkloadByName(s.Workload); err != nil {
		return err
	}
	if _, err := ResolveObjectives(s.Objectives); err != nil {
		return err
	}
	return nil
}

// ParetoRun is the assembled result of a Pareto-mode run — what the
// store persists and the differential tests compare byte-for-byte.
// Front holds the rank-0 points of the final evaluated generation in
// total order.
type ParetoRun struct {
	Workload    string        `json:"workload"`
	Population  int           `json:"population"`
	Generations int           `json:"generations"`
	Seed        uint64        `json:"seed"`
	Objectives  []string      `json:"objectives"`
	Solved      bool          `json:"solved"`
	BestFitness float64       `json:"best_fitness"`
	History     []GenStats    `json:"history"`
	Front       []ParetoPoint `json:"front"`
}

// newParetoRunner builds the Runner for a validated spec: an ordinary
// scalar runner plus the Objectives vector and execution-shape knobs.
func newParetoRunner(spec ParetoSpec) (*Runner, error) {
	cfg := neat.DefaultConfig(1, 1)
	cfg.PopulationSize = spec.Population
	r, err := NewRunner(spec.Workload, cfg, spec.Seed)
	if err != nil {
		return nil, err
	}
	r.Objectives = append([]string(nil), spec.Objectives...)
	r.Parallelism = spec.Parallelism
	r.BatchWidth = spec.BatchWidth
	r.Phases = spec.Phases
	r.Sink = spec.Sink
	return r, nil
}

// RunPareto executes one Pareto-mode evolution in-process: an
// ordinary Runner with Objectives set, run to the generation budget or
// the task target, returning the history plus the final front. The
// whole run is a pure function of the spec's identity tuple.
func RunPareto(ctx context.Context, spec ParetoSpec) (*ParetoRun, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	r, err := newParetoRunner(spec)
	if err != nil {
		return nil, err
	}
	solved, err := r.Run(ctx, spec.Generations)
	if err != nil {
		return nil, err
	}
	last := r.Last()
	run := &ParetoRun{
		Workload:    spec.Workload,
		Population:  spec.Population,
		Generations: spec.Generations,
		Seed:        spec.Seed,
		Objectives:  append([]string(nil), spec.Objectives...),
		Solved:      solved,
		BestFitness: last.MaxFitness,
		History:     r.History,
		Front:       r.Front(),
	}
	r.ReleaseEvalState()
	return run, nil
}

// FrontRecords streams the run's front as hwsim records tagged
// "workload#front": one record per point, Generation continuing
// monotonically after the history (len(History)+index) so failover
// dedup by generation keeps working across the whole stream. The
// report carries the objective values and crowding as floats and the
// genome ID as an int.
func FrontRecords(run *ParetoRun, sink hwsim.Sink) {
	if sink == nil {
		return
	}
	for i, p := range run.Front {
		floats := make(map[string]float64, len(p.Values)+1)
		for k, v := range p.Values {
			floats[k] = v
		}
		floats["crowding"] = p.Crowding
		sink.Record(hwsim.Record{
			Workload:   run.Workload + "#front",
			Generation: len(run.History) + i,
			Report: hwsim.Report{
				Name:   "front",
				Ints:   map[string]int64{"genome_id": p.GenomeID, "point": int64(i)},
				Floats: floats,
			},
		})
	}
}

// ReplayParetoRecords re-emits the complete record stream of a
// finished Pareto run — the per-generation history followed by the
// front — in exactly the order a live run produces it, so cache-hit
// replays are byte-identical on the wire.
func ReplayParetoRecords(run *ParetoRun, sink hwsim.Sink) {
	if sink == nil {
		return
	}
	for _, st := range run.History {
		sink.Record(hwsim.Record{
			Workload:   run.Workload,
			Generation: st.Generation,
			Report:     st.CounterReport(),
		})
	}
	FrontRecords(run, sink)
}
