package evolve

import (
	"context"
	"encoding/json"
	"testing"

	"repro/internal/hw/hwsim"
	"repro/internal/neat"
)

func islandSpec() IslandSpec {
	return IslandSpec{
		Workload:       "cartpole",
		Population:     32,
		Generations:    8,
		Islands:        2,
		MigrationEvery: 3,
		Seed:           42,
	}
}

func TestIslandSpecValidate(t *testing.T) {
	good := islandSpec()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := []IslandSpec{
		func() IslandSpec { s := islandSpec(); s.Islands = 1; return s }(),
		func() IslandSpec { s := islandSpec(); s.MigrationEvery = 0; return s }(),
		func() IslandSpec { s := islandSpec(); s.Population = 33; return s }(), // not divisible
		func() IslandSpec { s := islandSpec(); s.Workload = "no-such"; return s }(),
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Fatalf("bad spec %d accepted: %+v", i, s)
		}
	}
}

func TestIslandSeedDistinct(t *testing.T) {
	seen := map[uint64]int{}
	for i := 0; i < 64; i++ {
		s := IslandSeed(42, i)
		if prev, dup := seen[s]; dup {
			t.Fatalf("islands %d and %d share seed %d", prev, i, s)
		}
		seen[s] = i
	}
	if IslandSeed(42, 0) == 42 {
		t.Fatal("island 0 seed equals the base seed; island runs would collide with panmictic runs")
	}
}

func TestRunIslandsDeterministic(t *testing.T) {
	spec := islandSpec()
	a, err := RunIslands(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunIslands(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatal("two RunIslands of the same spec are not byte-identical")
	}
	if len(a.Results) != spec.Islands {
		t.Fatalf("got %d island results, want %d", len(a.Results), spec.Islands)
	}
	for i, ir := range a.Results {
		if ir.Island != i {
			t.Fatalf("results out of order: slot %d holds island %d", i, ir.Island)
		}
		if len(ir.History) == 0 || len(ir.History) > spec.Generations {
			t.Fatalf("island %d: %d generations of history, budget %d", i, len(ir.History), spec.Generations)
		}
		if len(ir.Champion) == 0 {
			t.Fatalf("island %d: no champion exported", i)
		}
	}
	if a.BestIsland < 0 || a.BestIsland >= spec.Islands {
		t.Fatalf("BestIsland = %d", a.BestIsland)
	}
}

func TestRunIslandsDiffersFromPanmictic(t *testing.T) {
	spec := islandSpec()
	run, err := RunIslands(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	// Same tuple, no islands: a single panmictic population. The island
	// run must be a genuinely different computation (different seeds per
	// island), not a relabeled copy.
	r, err := NewRunner(spec.Workload, configFor(spec), spec.Seed)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(context.Background(), spec.Generations); err != nil {
		t.Fatal(err)
	}
	if len(run.Results[0].History) == len(r.History) {
		same := true
		for i := range r.History {
			if run.Results[0].History[i].MaxFitness != r.History[i].MaxFitness {
				same = false
				break
			}
		}
		if same {
			t.Fatal("island 0 evolved identically to the panmictic run; island seeding is not isolating")
		}
	}
}

// TestMigrationPlanRing pins the migration topology: island i's
// champion lands on island (i+1) mod n.
func TestMigrationPlanRing(t *testing.T) {
	champs := []Champion{
		{Island: 0, Fitness: 1, Genome: json.RawMessage(`{"id":0}`)},
		{Island: 1, Fitness: 2, Genome: json.RawMessage(`{"id":1}`)},
		{Island: 2, Fitness: 3, Genome: json.RawMessage(`{"id":2}`)},
	}
	plan, err := MigrationPlan(champs, 3)
	if err != nil {
		t.Fatal(err)
	}
	for dest, ch := range plan {
		want := (dest - 1 + 3) % 3
		if ch.Island != want {
			t.Fatalf("island %d receives champion of %d, want %d", dest, ch.Island, want)
		}
	}
	if _, err := MigrationPlan(champs[:2], 3); err == nil {
		t.Fatal("incomplete champion set accepted")
	}
	dup := append([]Champion(nil), champs...)
	dup[1].Island = 0
	if _, err := MigrationPlan(dup, 3); err == nil {
		t.Fatal("duplicate island accepted")
	}
}

// TestIslandGroupStepInjectRoundTrip drives two half-groups manually
// through the same segment loop RunIslands uses and checks the result
// matches the reference — the in-process form of the distributed
// coordinator's contract.
func TestIslandGroupSplitMatchesReference(t *testing.T) {
	spec := islandSpec()
	want, err := RunIslands(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}

	ga, err := NewIslandGroup(spec, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	gb, err := NewIslandGroup(spec, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for target := min(spec.MigrationEvery, spec.Generations); ; {
		ca, sa, err := ga.Step(ctx, target)
		if err != nil {
			t.Fatal(err)
		}
		cb, sb, err := gb.Step(ctx, target)
		if err != nil {
			t.Fatal(err)
		}
		if sa || sb || target >= spec.Generations {
			break
		}
		plan, err := MigrationPlan(append(ca, cb...), spec.Islands)
		if err != nil {
			t.Fatal(err)
		}
		if err := ga.Inject(plan); err != nil {
			t.Fatal(err)
		}
		if err := gb.Inject(plan); err != nil {
			t.Fatal(err)
		}
		target = min(target+spec.MigrationEvery, spec.Generations)
	}
	got := AssembleRun(spec, append(ga.Results(), gb.Results()...))

	jw, _ := json.Marshal(want)
	jg, _ := json.Marshal(got)
	if string(jw) != string(jg) {
		t.Fatal("split island groups diverged from the single-group reference")
	}
}

func TestReplayIslandRecordsOrder(t *testing.T) {
	spec := islandSpec()
	run, err := RunIslands(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	var recs []hwsim.Record
	ReplayIslandRecords(run, hwsim.SinkFunc(func(r hwsim.Record) { recs = append(recs, r) }))
	total := 0
	for _, ir := range run.Results {
		total += len(ir.History)
	}
	if len(recs) != total {
		t.Fatalf("replayed %d records, history holds %d", len(recs), total)
	}
	// Canonical order: segment-major, islands ascending within a
	// segment, generations ascending within an island's segment slice.
	lastGen := map[string]int{}
	for _, r := range recs {
		if prev, ok := lastGen[r.Workload]; ok && r.Generation <= prev {
			t.Fatalf("stream %s went backwards: gen %d after %d", r.Workload, r.Generation, prev)
		}
		lastGen[r.Workload] = r.Generation
	}
	if len(lastGen) != spec.Islands {
		t.Fatalf("records tag %d island streams, want %d", len(lastGen), spec.Islands)
	}
}

// configFor builds the panmictic comparison run's config: the whole
// population in one runner.
func configFor(spec IslandSpec) neat.Config {
	cfg := neat.DefaultConfig(1, 1)
	cfg.PopulationSize = spec.Population
	return cfg
}
