package evolve

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/env"
	"repro/internal/neat"
)

func smallConfig() neat.Config {
	cfg := neat.DefaultConfig(4, 2)
	cfg.PopulationSize = 30
	return cfg
}

// TestCheckpointResumeBitIdentical pins the headline robustness
// guarantee: a run cut at a generation boundary and resumed from its
// checkpoint produces exactly the history the uninterrupted run would
// have — same per-generation stats, same verdict.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	// MountainCar needs shaped progress over many generations, so a
	// 3-generation cut never lands after a solve.
	const seed, cut, budget = 13, 3, 8
	ctx := context.Background()

	// Uninterrupted reference run.
	a, err := NewRunner("mountaincar", smallConfig(), seed)
	if err != nil {
		t.Fatal(err)
	}
	solvedA, err := a.Run(ctx, budget)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: checkpoint every generation, stop at the cut.
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "mountaincar.ckpt")
	b1, err := NewRunner("mountaincar", smallConfig(), seed)
	if err != nil {
		t.Fatal(err)
	}
	b1.CheckpointPath = ckpt
	b1.CheckpointEvery = 1
	solvedEarly, err := b1.Run(ctx, cut)
	if err != nil {
		t.Fatal(err)
	}
	if solvedEarly {
		t.Fatalf("seed %d solves before generation %d; pick a harder seed", seed, cut)
	}

	// Fresh process: restore and finish the budget.
	b2, err := NewRunner("mountaincar", smallConfig(), seed)
	if err != nil {
		t.Fatal(err)
	}
	if err := b2.RestoreCheckpoint(ckpt); err != nil {
		t.Fatal(err)
	}
	if b2.Pop.Generation != cut {
		t.Fatalf("restored at generation %d, want %d", b2.Pop.Generation, cut)
	}
	solvedB, err := b2.Run(ctx, budget)
	if err != nil {
		t.Fatal(err)
	}

	if solvedB != solvedA {
		t.Fatalf("verdicts differ: resumed %v vs uninterrupted %v", solvedB, solvedA)
	}
	// The resumed history must be the uninterrupted history's tail,
	// stat for stat (GenStats is a comparable value struct).
	tail := a.History[cut:]
	if len(b2.History) != len(tail) {
		t.Fatalf("resumed %d generations, uninterrupted tail has %d",
			len(b2.History), len(tail))
	}
	for i := range tail {
		if b2.History[i] != tail[i] {
			t.Fatalf("generation %d diverged after resume:\n%+v\nvs\n%+v",
				tail[i].Generation, b2.History[i], tail[i])
		}
	}
}

// TestRunCancelledSavesCheckpoint: a cancelled Run returns ctx.Err()
// and leaves a restorable checkpoint behind.
func TestRunCancelledSavesCheckpoint(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "cancel.ckpt")
	r, err := NewRunner("cartpole", smallConfig(), 5)
	if err != nil {
		t.Fatal(err)
	}
	r.CheckpointPath = ckpt
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	solved, err := r.Run(ctx, 10)
	if solved || err != context.Canceled {
		t.Fatalf("cancelled run: solved=%v err=%v", solved, err)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("no checkpoint after cancellation: %v", err)
	}
	r2, err := NewRunner("cartpole", smallConfig(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := r2.RestoreCheckpoint(ckpt); err != nil {
		t.Fatalf("cancellation checkpoint not restorable: %v", err)
	}
}

// panicShaper blows up on the first observation, modelling a fitness
// function bug.
type panicShaper struct{}

func (panicShaper) Reset()                     {}
func (panicShaper) Observe([]float64, float64) { panic("shaper bug") }
func (panicShaper) Fitness(env.Env, int) float64 {
	return 0
}

// TestEvaluationPanicBecomesError: a panicking fitness evaluation must
// surface as an evaluation error, not kill the worker pool (and with
// it the process).
func TestEvaluationPanicBecomesError(t *testing.T) {
	r, err := NewRunner("cartpole", smallConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	r.Workload.NewShaper = func() Shaper { return panicShaper{} }
	_, _, _, err = r.EvaluateGeneration(context.Background())
	if err == nil {
		t.Fatal("panicking shaper produced no error")
	}
	if !strings.Contains(err.Error(), "panic") {
		t.Fatalf("panic not identified in error: %v", err)
	}
}

// TestStudyCancelledContext: a study launched with a dead context
// fails every run with the context error instead of hanging or
// panicking, and the per-run errors are preserved.
func TestStudyCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	st, err := RunStudyContext(ctx, "cartpole", smallConfig(), 3, 5, 1, StudyOptions{})
	if err == nil {
		t.Fatal("cancelled study reported success")
	}
	if len(st.Results) != 3 {
		t.Fatalf("%d results", len(st.Results))
	}
	for _, res := range st.Results {
		if res.Err != context.Canceled {
			t.Fatalf("run %d: err %v, want context.Canceled", res.Run, res.Err)
		}
	}
}

// TestStudyCheckpointResume drives the acceptance scenario end to end:
// a study killed mid-run (simulated by a short budget) resumes from
// its checkpoint directory to the same per-run verdicts as an
// uninterrupted study.
func TestStudyCheckpointResume(t *testing.T) {
	const runs, seed, cut, budget = 2, 21, 3, 8
	ctx := context.Background()

	ref, err := RunStudyContext(ctx, "cartpole", smallConfig(), runs, budget, seed, StudyOptions{})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	opt := StudyOptions{CheckpointDir: dir, CheckpointEvery: 1}
	if _, err := RunStudyContext(ctx, "cartpole", smallConfig(), runs, cut, seed, opt); err != nil {
		t.Fatal(err)
	}
	resumed, err := RunStudyContext(ctx, "cartpole", smallConfig(), runs, budget, seed, opt)
	if err != nil {
		t.Fatal(err)
	}

	for run := 0; run < runs; run++ {
		a, b := ref.Results[run], resumed.Results[run]
		if a.Solved != b.Solved {
			t.Fatalf("run %d: verdict %v resumed vs %v uninterrupted", run, b.Solved, a.Solved)
		}
		if len(a.History) == 0 || len(b.History) == 0 {
			t.Fatalf("run %d: empty history", run)
		}
		la, lb := a.History[len(a.History)-1], b.History[len(b.History)-1]
		if la != lb {
			t.Fatalf("run %d: final generation diverged:\n%+v\nvs\n%+v", run, lb, la)
		}
	}
}
