package evolve

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/hw/hwsim"
)

// TestConcurrentCheckpointResumeBitIdentical is the race-detector
// proof of the on-demand checkpoint path the serving layer uses: a
// second goroutine hammers RequestCheckpoint while the run is live and
// generations are streaming to a sink, a mid-run checkpoint is copied
// aside the moment it appears, and a runner restored from that copy
// finishes with exactly the history suffix the uninterrupted run
// produced. Runs under -race via scripts/check.sh.
func TestConcurrentCheckpointResumeBitIdentical(t *testing.T) {
	// MountainCar at this seed/budget never solves (pinned by
	// TestCheckpointResumeBitIdentical), so histories are full length.
	const seed, budget = 13, 8
	ctx := context.Background()

	// Uninterrupted reference.
	ref, err := NewRunner("mountaincar", smallConfig(), seed)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Run(ctx, budget); err != nil {
		t.Fatal(err)
	}
	if len(ref.History) != budget {
		t.Fatalf("reference ran %d generations, want %d", len(ref.History), budget)
	}

	// Live run: sink streaming, checkpoint requests arriving from
	// another goroutine the whole time. CheckpointEvery is 0 — every
	// save on this run is an on-demand one. The request goroutine is
	// paced by the record stream (one full request+copy iteration per
	// generation boundary) so the test is deterministic on any
	// scheduler: every generation carries a pending request, and the
	// copier provably observes a mid-run checkpoint file.
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "live.ckpt")
	copied := filepath.Join(dir, "midrun.ckpt")
	b, err := NewRunner("mountaincar", smallConfig(), seed)
	if err != nil {
		t.Fatal(err)
	}
	b.CheckpointPath = ckpt
	log := &hwsim.Log{}
	bound := make(chan struct{})
	acked := make(chan struct{})
	b.Sink = hwsim.MultiSink(log, hwsim.SinkFunc(func(hwsim.Record) {
		bound <- struct{}{}
		<-acked
	}))

	grabbed := make(chan struct{})
	go func() {
		defer close(grabbed)
		for range bound {
			b.RequestCheckpoint()
			// Copy the first checkpoint that materializes: a mid-run
			// boundary snapshot. Saves go through temp+rename, so a
			// read here sees a complete file.
			if _, err := os.Stat(copied); err != nil {
				if data, err := os.ReadFile(ckpt); err == nil {
					os.WriteFile(copied, data, 0o644)
				}
			}
			acked <- struct{}{}
		}
	}()
	if _, err := b.Run(ctx, budget); err != nil {
		t.Fatal(err)
	}
	close(bound)
	<-grabbed

	// Concurrency must not perturb the run itself.
	if len(b.History) != len(ref.History) {
		t.Fatalf("live run %d generations vs reference %d", len(b.History), len(ref.History))
	}
	for i := range ref.History {
		if b.History[i] != ref.History[i] {
			t.Fatalf("generation %d diverged under concurrent checkpointing:\n%+v\nvs\n%+v",
				i, b.History[i], ref.History[i])
		}
	}
	if log.Len() != budget {
		t.Fatalf("sink saw %d records, want %d", log.Len(), budget)
	}

	if _, err := os.Stat(copied); err != nil {
		t.Fatalf("no mid-run checkpoint captured: %v", err)
	}

	// Resume from the mid-run snapshot: the continuation must be the
	// reference history's tail, stat for stat.
	c, err := NewRunner("mountaincar", smallConfig(), seed)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RestoreCheckpoint(copied); err != nil {
		t.Fatal(err)
	}
	cut := c.Pop.Generation
	if cut < 1 || cut >= budget {
		t.Fatalf("mid-run checkpoint at generation %d, want within (0, %d)", cut, budget)
	}
	if _, err := c.Run(ctx, budget); err != nil {
		t.Fatal(err)
	}
	tail := ref.History[cut:]
	if len(c.History) != len(tail) {
		t.Fatalf("resumed %d generations, reference tail has %d", len(c.History), len(tail))
	}
	for i := range tail {
		if c.History[i] != tail[i] {
			t.Fatalf("generation %d diverged after mid-run resume:\n%+v\nvs\n%+v",
				tail[i].Generation, c.History[i], tail[i])
		}
	}
}
