package evolve

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/hw/hwsim"
	"repro/internal/neat"
)

func TestRunStudyBasics(t *testing.T) {
	cfg := neat.DefaultConfig(1, 1)
	cfg.PopulationSize = 40
	st, err := RunStudy("cartpole", cfg, 4, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Results) != 4 {
		t.Fatalf("%d results", len(st.Results))
	}
	for _, r := range st.Results {
		if r.Err != nil {
			t.Fatalf("run %d: %v", r.Run, r.Err)
		}
		if len(r.History) == 0 {
			t.Fatalf("run %d: empty history", r.Run)
		}
	}
	if rate := st.SolveRate(); rate <= 0 {
		t.Fatalf("cartpole solve rate %v in 10 generations", rate)
	}
	if sum := st.GenerationsToSolve(); sum.N == 0 || sum.Min < 1 {
		t.Fatalf("convergence summary %+v", sum)
	}
}

func TestStudyRunsAreIndependent(t *testing.T) {
	cfg := neat.DefaultConfig(1, 1)
	cfg.PopulationSize = 30
	st, err := RunStudy("mountaincar", cfg, 3, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	// Different seeds should diverge in at least one statistic.
	a := st.Results[0].History[0].MeanFitness
	same := true
	for _, r := range st.Results[1:] {
		if r.History[0].MeanFitness != a {
			same = false
		}
	}
	if same {
		t.Fatal("all runs produced identical gen-0 mean fitness")
	}
}

func TestStudyDeterministicAcrossInvocations(t *testing.T) {
	run := func() float64 {
		cfg := neat.DefaultConfig(1, 1)
		cfg.PopulationSize = 25
		st, err := RunStudy("mario", cfg, 2, 2, 17)
		if err != nil {
			t.Fatal(err)
		}
		return st.Results[0].History[1].MaxFitness + st.Results[1].History[0].MeanFitness
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("study not deterministic: %v vs %v", a, b)
	}
}

func TestStudyPools(t *testing.T) {
	cfg := neat.DefaultConfig(1, 1)
	cfg.PopulationSize = 25
	st, err := RunStudy("mario", cfg, 2, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	ops := st.OpsPerGeneration()
	if len(ops) == 0 {
		t.Fatal("no op samples")
	}
	for _, v := range ops {
		if v <= 0 {
			t.Fatalf("non-positive op sample %v", v)
		}
	}
	fp := st.FootprintsPerGeneration()
	if len(fp) < len(ops) {
		t.Fatalf("footprint samples %d < op samples %d", len(fp), len(ops))
	}
	curve := st.MeanNormMaxByGeneration()
	if len(curve) == 0 || len(curve) > 3 {
		t.Fatalf("mean curve length %d", len(curve))
	}
}

func TestStudyUnknownWorkload(t *testing.T) {
	if _, err := RunStudy("pong", neat.DefaultConfig(1, 1), 1, 1, 1); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestStudyAggregatesAllRunErrors(t *testing.T) {
	// Every run fails; the joined error must name each of them rather
	// than the first failure masking the rest.
	st, err := RunStudy("pong", neat.DefaultConfig(1, 1), 3, 1, 1)
	if err == nil {
		t.Fatal("want error")
	}
	for run := 0; run < 3; run++ {
		if !strings.Contains(err.Error(), fmt.Sprintf("run %d:", run)) {
			t.Fatalf("error missing run %d: %v", run, err)
		}
	}
	for _, r := range st.Results {
		if r.Err == nil {
			t.Fatalf("run %d recorded no error", r.Run)
		}
	}
}

func TestStudySinkRecordsTagged(t *testing.T) {
	cfg := neat.DefaultConfig(1, 1)
	cfg.PopulationSize = 30
	log := &hwsim.Log{}
	st, err := RunStudyWithSink(context.Background(), "mountaincar", cfg, 2, 3, 11, log)
	if err != nil {
		t.Fatal(err)
	}
	wantRecords := 0
	for _, r := range st.Results {
		wantRecords += len(r.History)
	}
	recs := log.Records()
	if len(recs) != wantRecords {
		t.Fatalf("%d records for %d history entries", len(recs), wantRecords)
	}
	// Sorted records mirror the per-run histories field by field.
	i := 0
	for run := 0; run < 2; run++ {
		for g, st2 := range st.Results[run].History {
			rec := recs[i]
			i++
			if rec.Workload != "mountaincar" || rec.Run != run || rec.Generation != g {
				t.Fatalf("record %d mistagged: %+v", i-1, rec)
			}
			if rec.Report.Int("total_genes") != int64(st2.TotalGenes) {
				t.Fatalf("run %d gen %d: record genes %d, history %d",
					run, g, rec.Report.Int("total_genes"), st2.TotalGenes)
			}
			if rec.Report.Float("max_fitness") != st2.MaxFitness {
				t.Fatalf("run %d gen %d: record fitness %v, history %v",
					run, g, rec.Report.Float("max_fitness"), st2.MaxFitness)
			}
		}
	}
	if s := log.Series("footprint_bytes"); len(s) != wantRecords {
		t.Fatalf("footprint series %d long", len(s))
	}
}

func TestSpeciesInfoExposed(t *testing.T) {
	cfg := neat.DefaultConfig(1, 1)
	cfg.PopulationSize = 40
	r, err := NewRunner("lunarlander", cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Direct population access for the species snapshot.
	for _, g := range r.Pop.Genomes {
		g.Fitness = 1
	}
	repro, err := r.Pop.Epoch()
	if err != nil {
		t.Fatal(err)
	}
	if len(repro.Species) != repro.NumSpecies {
		t.Fatalf("%d species infos for %d species", len(repro.Species), repro.NumSpecies)
	}
	total := 0
	for _, s := range repro.Species {
		if s.Size <= 0 || s.Age < 0 {
			t.Fatalf("bad species info %+v", s)
		}
		total += s.Size
	}
	if total != 40 {
		t.Fatalf("species sizes sum to %d", total)
	}
	for i := 1; i < len(repro.Species); i++ {
		if repro.Species[i-1].BestFitness < repro.Species[i].BestFitness {
			t.Fatal("species not sorted by fitness")
		}
	}
}
