package evolve

import (
	"context"
	"testing"

	"repro/internal/neat"
)

func smallCfg() neat.Config {
	cfg := neat.DefaultConfig(1, 1) // dimensions overwritten by NewRunner
	cfg.PopulationSize = 40
	return cfg
}

func TestWorkloadRegistry(t *testing.T) {
	names := WorkloadNames()
	if len(names) != 10 {
		t.Fatalf("have %d workloads: %v", len(names), names)
	}
	for _, n := range names {
		w, err := WorkloadByName(n)
		if err != nil {
			t.Fatal(err)
		}
		if w.EnvName != n {
			t.Fatalf("workload %q wraps env %q", n, w.EnvName)
		}
		if w.Target <= w.Floor {
			t.Fatalf("workload %q: target %v <= floor %v", n, w.Target, w.Floor)
		}
		if w.NewShaper == nil {
			t.Fatalf("workload %q: nil shaper", n)
		}
	}
	if _, err := WorkloadByName("doom"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestSuites(t *testing.T) {
	if len(ControlSuite()) != 3 || len(AtariSuite()) != 4 || len(PaperSuite()) != 6 {
		t.Fatalf("suite sizes: %d/%d/%d", len(ControlSuite()), len(AtariSuite()), len(PaperSuite()))
	}
	for _, n := range PaperSuite() {
		if _, err := WorkloadByName(n); err != nil {
			t.Fatalf("paper suite entry %q unknown", n)
		}
	}
}

func TestNormalize(t *testing.T) {
	w, _ := WorkloadByName("lunarlander")
	if got := w.Normalize(w.Target); got != 1 {
		t.Fatalf("Normalize(target) = %v", got)
	}
	if got := w.Normalize(w.Floor); got != 0 {
		t.Fatalf("Normalize(floor) = %v", got)
	}
}

func TestRunnerConfiguresDimensions(t *testing.T) {
	r, err := NewRunner("mountaincar", smallCfg(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Pop.Config.NumInputs != 2 || r.Pop.Config.NumOutputs != 3 {
		t.Fatalf("dimensions %d/%d", r.Pop.Config.NumInputs, r.Pop.Config.NumOutputs)
	}
}

func TestStepProducesStats(t *testing.T) {
	r, err := NewRunner("cartpole", smallCfg(), 2)
	if err != nil {
		t.Fatal(err)
	}
	st, err := r.Step(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Generation != 0 {
		t.Fatalf("first generation index %d", st.Generation)
	}
	if st.EnvSteps <= 0 || st.InferenceMACs <= 0 || st.VertexUpdates <= 0 {
		t.Fatalf("no inference work recorded: %+v", st)
	}
	if st.TotalGenes <= 0 || st.FootprintBytes != st.TotalGenes*8 {
		t.Fatalf("structure stats wrong: %+v", st)
	}
	if st.MaxFitness < st.MeanFitness {
		t.Fatalf("max %v below mean %v", st.MaxFitness, st.MeanFitness)
	}
	if !st.Solved && (st.CrossoverOps == 0 || st.MutationOps == 0) {
		t.Fatalf("reproduction ops missing: %+v", st)
	}
	if len(r.History) != 1 {
		t.Fatalf("history length %d", len(r.History))
	}
}

func TestFitnessImprovesOnCartPole(t *testing.T) {
	cfg := smallCfg()
	cfg.PopulationSize = 60
	r, err := NewRunner("cartpole", cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Step(context.Background()); err != nil {
		t.Fatal(err)
	}
	first := r.History[0].MaxFitness
	solved, err := r.Run(context.Background(), 25)
	if err != nil {
		t.Fatal(err)
	}
	last := r.Last().MaxFitness
	if !solved && last <= first {
		t.Fatalf("no improvement: gen0 max %v, final max %v", first, last)
	}
	t.Logf("cartpole: gen0=%.1f final=%.1f solved=%v gens=%d", first, last, solved, len(r.History))
}

func TestDeterministicEvaluation(t *testing.T) {
	run := func() []float64 {
		r, err := NewRunner("mountaincar", smallCfg(), 11)
		if err != nil {
			t.Fatal(err)
		}
		r.Parallelism = 4
		var maxes []float64
		for g := 0; g < 3; g++ {
			st, err := r.Step(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			maxes = append(maxes, st.MaxFitness, st.MeanFitness)
		}
		return maxes
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("parallel evaluation non-deterministic: %v vs %v", a, b)
		}
	}
}

func TestSerialAndParallelAgree(t *testing.T) {
	run := func(par int) float64 {
		r, err := NewRunner("cartpole", smallCfg(), 13)
		if err != nil {
			t.Fatal(err)
		}
		r.Parallelism = par
		st, err := r.Step(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return st.MeanFitness
	}
	if s, p := run(1), run(8); s != p {
		t.Fatalf("serial %v != parallel %v", s, p)
	}
}

func TestRAMWorkloadScale(t *testing.T) {
	cfg := smallCfg()
	cfg.PopulationSize = 20
	r, err := NewRunner("asterix-ram", cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	st, err := r.Step(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// 128 inputs × 9 outputs fully connected: >1000 genes per genome.
	if st.TotalGenes < 20*(128*9+137) {
		t.Fatalf("RAM workload population too small: %d genes", st.TotalGenes)
	}
	// Memory footprint per generation must stay in the paper's <1 MB
	// regime at this reduced population (150/20 of the full size would
	// still be ~2 MB for asterix — the paper's Fig 5b tops near 1 MB).
	if st.FootprintBytes <= 0 {
		t.Fatal("no footprint recorded")
	}
	t.Logf("asterix-ram pop=20: genes=%d footprint=%dKB ops=%d",
		st.TotalGenes, st.FootprintBytes/1024, st.CrossoverOps+st.MutationOps)
}

func TestShapersRewardProgress(t *testing.T) {
	// The MountainCar shaper must rank a higher climb above a lower one.
	var s mcShaper
	s.Reset()
	s.Observe([]float64{-0.5, 0}, -1)
	lowObs := s.maxPos
	s.Observe([]float64{0.1, 0}, -1)
	if s.maxPos <= lowObs {
		t.Fatal("shaper did not track progress")
	}
}

func TestHistoryAccumulates(t *testing.T) {
	r, err := NewRunner("mario", smallCfg(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(context.Background(), 3); err != nil {
		t.Fatal(err)
	}
	if len(r.History) == 0 || len(r.History) > 3 {
		t.Fatalf("history %d entries", len(r.History))
	}
	for i, st := range r.History {
		if st.Generation != i {
			t.Fatalf("history[%d].Generation = %d", i, st.Generation)
		}
	}
}
