package evolve

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/gene"
	"repro/internal/hw/hwsim"
	"repro/internal/neat"
)

// This file is the island model: a population split into independent
// sub-populations ("islands") that evolve in isolation and exchange
// champions on a fixed migration schedule. It is the population-level
// parallelism the paper's EvE PE array performs inside one chip, lifted
// to the level where islands can live on different worker processes —
// the whole run is a pure function of (workload, population,
// generations, islands, migrationEvery, seed), so a single-process
// reference and a fleet spreading islands across workers produce
// byte-identical results. Two design rules buy that property:
//
//  1. Each island is an ordinary Runner seeded by IslandSeed(seed, i).
//     Islands never share PRNG state, genome-ID streams, or caches, so
//     where an island executes cannot matter.
//  2. Champions cross island boundaries only as JSON (Champion.Genome
//     is a json.RawMessage). The single-process reference round-trips
//     through the same encoding the worker RPC uses; Go's float64 JSON
//     round-trip is exact, so both paths inject identical genomes.

// IslandSpec describes one island-model run. The full tuple is the
// identity: two specs differing only in Parallelism/BatchWidth (the
// execution-shape knobs) produce byte-identical results.
type IslandSpec struct {
	Workload string
	// Population is the total genome count, split evenly across
	// islands; it must be divisible by Islands.
	Population  int
	Generations int
	// Islands is the sub-population count (≥ 2).
	Islands int
	// MigrationEvery is the migration period in generations: islands
	// evolve independently for MigrationEvery generations, then each
	// island imports its ring-predecessor's champion.
	MigrationEvery int
	Seed           uint64

	// Parallelism / BatchWidth shape each island runner's evaluation
	// (see Runner); they do not affect results.
	Parallelism int
	BatchWidth  int

	// Phases, when set, receives every island runner's per-phase
	// wall-clock counters (see Runner.Phases). Metrics only — never
	// serialized, never part of the run's identity or results.
	Phases *hwsim.Counters `json:"-"`
}

// Validate reports spec errors before any island is built.
func (s IslandSpec) Validate() error {
	switch {
	case s.Islands < 2:
		return fmt.Errorf("island: need at least 2 islands, have %d", s.Islands)
	case s.Population < s.Islands:
		return fmt.Errorf("island: population %d smaller than island count %d", s.Population, s.Islands)
	case s.Population%s.Islands != 0:
		return fmt.Errorf("island: population %d not divisible by %d islands", s.Population, s.Islands)
	case s.Generations < 1:
		return fmt.Errorf("island: generations %d must be positive", s.Generations)
	case s.MigrationEvery < 1:
		return fmt.Errorf("island: migrationEvery %d must be positive", s.MigrationEvery)
	}
	if _, err := WorkloadByName(s.Workload); err != nil {
		return err
	}
	return nil
}

// IslandSeed derives island i's runner seed from the run's base seed —
// the same splitmix64 finalizer as RunSeed but salted onto a different
// stream, so island seeds never collide with study per-run seeds
// derived from the same base.
func IslandSeed(base uint64, island int) uint64 {
	x := (base ^ 0x9E6C63D0876A9A35) + 0x9E3779B97F4A7C15*uint64(island+1)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// Champion is an island's exported best genome at a migration barrier,
// in wire form. The genome stays encoded until injection so the
// single-process reference and the worker RPC inject bit-identical
// values (see the package comment above).
type Champion struct {
	Island  int             `json:"island"`
	Fitness float64         `json:"fitness"`
	Genome  json.RawMessage `json:"genome"`
}

// MigrationPlan computes the ring migration for one barrier: island i
// imports the champion of island (i-1+n) mod n. Every island must be
// represented in champs exactly once.
func MigrationPlan(champs []Champion, islands int) (map[int]Champion, error) {
	byIsland := make(map[int]Champion, len(champs))
	for _, c := range champs {
		if c.Island < 0 || c.Island >= islands {
			return nil, fmt.Errorf("island: champion for out-of-range island %d", c.Island)
		}
		if _, dup := byIsland[c.Island]; dup {
			return nil, fmt.Errorf("island: duplicate champion for island %d", c.Island)
		}
		byIsland[c.Island] = c
	}
	if len(byIsland) != islands {
		return nil, fmt.Errorf("island: have champions for %d of %d islands", len(byIsland), islands)
	}
	plan := make(map[int]Champion, islands)
	for dest := 0; dest < islands; dest++ {
		plan[dest] = byIsland[(dest-1+islands)%islands]
	}
	return plan, nil
}

// IslandResult is one island's complete outcome: its per-generation
// history (the stats stream), final champion, and solved flag.
type IslandResult struct {
	Island      int             `json:"island"`
	Seed        uint64          `json:"seed"`
	Solved      bool            `json:"solved"`
	BestFitness float64         `json:"best_fitness"`
	History     []GenStats      `json:"history"`
	Champion    json.RawMessage `json:"champion,omitempty"`
}

// IslandRun is the assembled result of an island-model run — what the
// store persists and the differential tests compare byte-for-byte.
type IslandRun struct {
	Workload       string         `json:"workload"`
	Population     int            `json:"population"`
	Generations    int            `json:"generations"`
	Islands        int            `json:"islands"`
	MigrationEvery int            `json:"migration_every"`
	Seed           uint64         `json:"seed"`
	Solved         bool           `json:"solved"`
	BestFitness    float64        `json:"best_fitness"`
	BestIsland     int            `json:"best_island"`
	Results        []IslandResult `json:"results"`
}

// AssembleRun builds the canonical IslandRun from per-island results
// (any order; sorted by island here). Both the single-process reference
// and the coordinator gathering results from workers assemble through
// this one function.
func AssembleRun(spec IslandSpec, results []IslandResult) *IslandRun {
	sort.Slice(results, func(i, j int) bool { return results[i].Island < results[j].Island })
	run := &IslandRun{
		Workload:       spec.Workload,
		Population:     spec.Population,
		Generations:    spec.Generations,
		Islands:        spec.Islands,
		MigrationEvery: spec.MigrationEvery,
		Seed:           spec.Seed,
		BestIsland:     -1,
		Results:        results,
	}
	for _, ir := range results {
		run.Solved = run.Solved || ir.Solved
		if run.BestIsland < 0 || ir.BestFitness > run.BestFitness {
			run.BestFitness, run.BestIsland = ir.BestFitness, ir.Island
		}
	}
	return run
}

// IslandGroup drives a subset of a run's islands inside one process —
// all of them for the single-process reference, a shard of them on a
// worker. Islands within a group step sequentially in ascending island
// order, so a group's work is deterministic regardless of how islands
// were sharded.
type IslandGroup struct {
	Spec    IslandSpec
	Islands []int     // ascending global island indices
	Runners []*Runner // parallel to Islands
}

// NewIslandGroup validates the spec and builds one Runner per listed
// island, each seeded with IslandSeed and tracking its champion.
func NewIslandGroup(spec IslandSpec, islands []int) (*IslandGroup, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if len(islands) == 0 {
		return nil, fmt.Errorf("island: group needs at least one island")
	}
	islands = append([]int(nil), islands...)
	sort.Ints(islands)
	g := &IslandGroup{Spec: spec, Islands: islands}
	seen := map[int]bool{}
	for _, i := range islands {
		if i < 0 || i >= spec.Islands {
			return nil, fmt.Errorf("island: index %d outside [0,%d)", i, spec.Islands)
		}
		if seen[i] {
			return nil, fmt.Errorf("island: duplicate index %d", i)
		}
		seen[i] = true
		cfg := neat.DefaultConfig(1, 1)
		cfg.PopulationSize = spec.Population / spec.Islands
		r, err := NewRunner(spec.Workload, cfg, IslandSeed(spec.Seed, i))
		if err != nil {
			return nil, err
		}
		r.Parallelism = spec.Parallelism
		r.BatchWidth = spec.BatchWidth
		r.Phases = spec.Phases
		r.TrackChampion = true
		g.Runners = append(g.Runners, r)
	}
	return g, nil
}

// Step advances every island in the group to the target generation (a
// migration barrier or the final budget) and exports their champions.
// solved reports whether any island in the group reached its workload
// target during this segment.
func (g *IslandGroup) Step(ctx context.Context, target int) (champs []Champion, solved bool, err error) {
	for k, r := range g.Runners {
		s, err := r.Run(ctx, target)
		if err != nil {
			return nil, false, fmt.Errorf("island %d: %w", g.Islands[k], err)
		}
		solved = solved || s
		ch := r.Champion()
		if ch == nil {
			return nil, false, fmt.Errorf("island %d: no champion at generation %d", g.Islands[k], target)
		}
		raw, merr := json.Marshal(ch)
		if merr != nil {
			return nil, false, fmt.Errorf("island %d: encode champion: %w", g.Islands[k], merr)
		}
		champs = append(champs, Champion{Island: g.Islands[k], Fitness: ch.Fitness, Genome: raw})
	}
	return champs, solved, nil
}

// Inject applies a migration plan to the group's islands: each local
// island receives the plan's champion addressed to it, decoded from
// wire form.
func (g *IslandGroup) Inject(plan map[int]Champion) error {
	for k, r := range g.Runners {
		c, ok := plan[g.Islands[k]]
		if !ok {
			return fmt.Errorf("island %d: no migrant in plan", g.Islands[k])
		}
		var migrant gene.Genome
		if err := json.Unmarshal(c.Genome, &migrant); err != nil {
			return fmt.Errorf("island %d: decode migrant: %w", g.Islands[k], err)
		}
		r.Pop.ReceiveMigrant(&migrant)
	}
	return nil
}

// Results exports every island's outcome and releases the runners'
// evaluation engines (a finished group is read-only).
func (g *IslandGroup) Results() []IslandResult {
	var out []IslandResult
	for k, r := range g.Runners {
		last := r.Last()
		ir := IslandResult{
			Island:      g.Islands[k],
			Seed:        IslandSeed(g.Spec.Seed, g.Islands[k]),
			Solved:      last.Solved,
			BestFitness: last.MaxFitness,
			History:     r.History,
		}
		if ch := r.Champion(); ch != nil {
			if raw, err := json.Marshal(ch); err == nil {
				ir.Champion = raw
			}
		}
		out = append(out, ir)
		r.ReleaseEvalState()
	}
	return out
}

// RunIslands is the single-process island-model reference: all islands
// in one group, segment loop with ring migration at every barrier,
// stopping at the first barrier where any island solved (champions are
// not injected after the final segment). The distributed coordinator
// replicates exactly this loop over worker RPCs; the differential test
// pins the two byte-identical.
func RunIslands(ctx context.Context, spec IslandSpec) (*IslandRun, error) {
	all := make([]int, spec.Islands)
	for i := range all {
		all[i] = i
	}
	g, err := NewIslandGroup(spec, all)
	if err != nil {
		return nil, err
	}
	for target := min(spec.MigrationEvery, spec.Generations); ; {
		champs, solved, err := g.Step(ctx, target)
		if err != nil {
			return nil, err
		}
		if solved || target >= spec.Generations {
			break
		}
		plan, err := MigrationPlan(champs, spec.Islands)
		if err != nil {
			return nil, err
		}
		if err := g.Inject(plan); err != nil {
			return nil, err
		}
		target = min(target+spec.MigrationEvery, spec.Generations)
	}
	return AssembleRun(spec, g.Results()), nil
}

// ReplayIslandRecords streams the run's per-generation records in the
// canonical order: segment-major (all islands' generations of segment
// 0, then segment 1, …), island-ascending within a segment — the order
// a coordinator interleaving worker streams and a single process both
// reproduce from the same histories. Records are tagged
// "workload#iN" so consumers can attribute a generation to its island.
func ReplayIslandRecords(run *IslandRun, sink hwsim.Sink) {
	if sink == nil {
		return
	}
	m := run.MigrationEvery
	if m < 1 {
		m = run.Generations
		if m < 1 {
			return
		}
	}
	for start := 0; ; start += m {
		emitted := false
		for _, ir := range run.Results {
			h := ir.History
			for gen := start; gen < start+m && gen < len(h); gen++ {
				sink.Record(hwsim.Record{
					Workload:   fmt.Sprintf("%s#i%d", run.Workload, ir.Island),
					Generation: h[gen].Generation,
					Report:     h[gen].CounterReport(),
				})
				emitted = true
			}
		}
		if !emitted {
			return
		}
	}
}
