package evolve

import (
	"context"
	"errors"
	"testing"

	"repro/internal/neat"
)

func poolRunner(t *testing.T, pop int) *Runner {
	t.Helper()
	cfg := neat.DefaultConfig(0, 0)
	cfg.PopulationSize = pop
	r, err := NewRunner("cartpole", cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestEvaluateGenerationCancelled(t *testing.T) {
	r := poolRunner(t, 16)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, _, err := r.EvaluateGeneration(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The parallel dispatch path must honor cancellation too.
	r.Parallelism = 4
	if _, _, _, err := r.EvaluateGeneration(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("parallel err = %v, want context.Canceled", err)
	}
	// The runner stays usable after a cancelled evaluation.
	if _, _, _, err := r.EvaluateGeneration(context.Background()); err != nil {
		t.Fatalf("evaluation after cancel: %v", err)
	}
}

func TestWorkerPoolPersistsAcrossGenerations(t *testing.T) {
	r := poolRunner(t, 16)
	ctx := context.Background()
	if _, err := r.Step(ctx); err != nil {
		t.Fatal(err)
	}
	if len(r.workers) == 0 {
		t.Fatal("no workers after first generation")
	}
	w0 := r.workers[0]
	for i := 0; i < 3; i++ {
		if _, err := r.Step(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if r.workers[0] != w0 {
		t.Fatal("worker slot rebuilt between generations; pool is not persistent")
	}
}

// TestPhenoCacheHitsAcrossGenerations pins the genome-level reuse: with
// elitism on, at least one phenotype per generation after the first must
// be served from the cache instead of recompiled.
func TestPhenoCacheHitsAcrossGenerations(t *testing.T) {
	r := poolRunner(t, 24)
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		if _, err := r.Step(ctx); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses := r.PhenoCache().Stats()
	if hits == 0 {
		t.Fatalf("no cache hits over 4 generations (misses=%d); elites are being recompiled", misses)
	}
	// Sweep keeps the cache bounded by the live population, not the
	// cumulative history.
	if n := r.PhenoCache().Len(); n > 2*len(r.Pop.Genomes) {
		t.Fatalf("cache holds %d programs for a %d-genome population", n, len(r.Pop.Genomes))
	}
}
