package evolve

import (
	"repro/internal/gene"
	"repro/internal/rng"
)

// Lamarckian weight refinement — the paper's Future Directions hybrid:
// "GENESYS can be run in conjunction with supervised learning, with the
// former enabling rapid topology exploration and then using
// conventional training to tune the weights." In the reward-only
// setting the conventional tuner is a local search: perturb one
// connection weight at a time, keep improvements, and write the tuned
// weights back into the genome (Lamarckian inheritance), so the next
// reproduction round evolves from the refined individual.

// RefineResult reports one refinement session.
type RefineResult struct {
	GenomeID     int64
	Trials       int
	Accepted     int
	FitnessStart float64
	FitnessEnd   float64
}

// RefineBest applies `trials` hill-climbing weight perturbations to the
// population's current best genome, writing improvements back. The
// genome's Fitness field is updated to the refined value.
func (r *Runner) RefineBest(trials int, seed uint64) (RefineResult, error) {
	if r.Pop == nil {
		return RefineResult{}, nil
	}
	best := r.Pop.Best()
	if best == nil {
		return RefineResult{}, nil
	}
	return r.refine(best, trials, seed)
}

// refine hill-climbs one genome's connection weights. It runs on the
// pool's first worker slot (creating it if evaluation has not run yet),
// compiling each trial directly — the phenotype changes every trial, so
// the reuse cache is deliberately bypassed — and bumps the genome's
// version stamp whenever a refined weight is kept, so the cache never
// serves the pre-refinement phenotype for this genome.
func (r *Runner) refine(g *gene.Genome, trials int, seed uint64) (RefineResult, error) {
	if err := r.ensureWorkers(1); err != nil {
		return RefineResult{}, err
	}
	w := r.workers[0]
	prng := rng.New(seed ^ uint64(g.ID)<<20)

	res := RefineResult{GenomeID: g.ID, Trials: trials}
	cur := r.refineEval(w, g)
	if cur.err != nil {
		return res, cur.err
	}
	res.FitnessStart = cur.fitness
	bestFit := cur.fitness

	for trial := 0; trial < trials && len(g.Conns) > 0; trial++ {
		i := prng.Intn(len(g.Conns))
		old := g.Conns[i].Weight
		delta := prng.NormFloat64() * 0.3
		g.Conns[i].Weight = clampWeight(old + delta)

		ev := r.refineEval(w, g)
		if ev.err != nil {
			return res, ev.err
		}
		if ev.fitness > bestFit {
			bestFit = ev.fitness
			res.Accepted++
			g.BumpVersion() // the Lamarckian write-back changed the phenotype
		} else {
			g.Conns[i].Weight = old // revert
		}
	}
	g.Fitness = bestFit
	res.FitnessEnd = bestFit
	return res, nil
}

// refineEval compiles g with the worker's builder (no cache) and scores
// it.
func (r *Runner) refineEval(w *evalWorker, g *gene.Genome) evalResult {
	net, err := w.builder.Build(g)
	if err != nil {
		return evalResult{err: err}
	}
	return r.runEpisodes(net, w.env, w.shaper, g)
}

// clampWeight keeps refined weights in the hardware-representable
// range.
func clampWeight(v float64) float64 {
	const lim = gene.AttrLimit
	if v >= lim {
		return lim - 1.0/(1<<12)
	}
	if v < -lim {
		return -lim
	}
	return v
}
