package evolve

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/hw/hwsim"
	"repro/internal/neat"
	"repro/internal/stats"
)

// Study runs N independent evolution runs of one workload in parallel —
// the paper's characterization methodology ("across 100 separate runs
// of each application") — and aggregates convergence statistics.

// StudyResult is one run's outcome.
type StudyResult struct {
	Run     int
	Solved  bool
	History []GenStats
	Err     error
}

// Study aggregates a batch of runs.
type Study struct {
	Workload string
	Results  []StudyResult
}

// RunStudy executes runs independent evolutions with seeds seed+run,
// each up to maxGenerations. Concurrency is capped by a worker
// semaphore (runtime.NumCPU slots) rather than one unbounded goroutine
// per run, and every run's error is aggregated with errors.Join — a
// failing seed no longer masks failures in later runs.
func RunStudy(workload string, cfg neat.Config, runs, maxGenerations int, seed uint64) (*Study, error) {
	return RunStudyWithSink(workload, cfg, runs, maxGenerations, seed, nil)
}

// RunStudyWithSink is RunStudy with per-generation records flowing to
// sink (which may be nil). Each run's records are tagged with the
// workload name and run index; the sink must be safe for concurrent
// use (hwsim.Log is).
func RunStudyWithSink(workload string, cfg neat.Config, runs, maxGenerations int, seed uint64, sink hwsim.Sink) (*Study, error) {
	st := &Study{Workload: workload, Results: make([]StudyResult, runs)}
	sem := make(chan struct{}, runtime.NumCPU())
	var wg sync.WaitGroup
	for run := 0; run < runs; run++ {
		wg.Add(1)
		go func(run int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			res := StudyResult{Run: run}
			r, err := NewRunner(workload, cfg, seed+uint64(run)*7919)
			if err != nil {
				res.Err = err
				st.Results[run] = res
				return
			}
			r.Parallelism = 2 // the study itself provides the outer parallelism
			if sink != nil {
				r.Sink = hwsim.Tagged{Sink: sink, Workload: workload, Run: run}
			}
			res.Solved, res.Err = r.Run(maxGenerations)
			res.History = r.History
			st.Results[run] = res
		}(run)
	}
	wg.Wait()
	var errs []error
	for _, res := range st.Results {
		if res.Err != nil {
			errs = append(errs, fmt.Errorf("run %d: %w", res.Run, res.Err))
		}
	}
	return st, errors.Join(errs...)
}

// SolveRate is the fraction of runs that reached the target.
func (s *Study) SolveRate() float64 {
	if len(s.Results) == 0 {
		return 0
	}
	n := 0
	for _, r := range s.Results {
		if r.Solved {
			n++
		}
	}
	return float64(n) / float64(len(s.Results))
}

// GenerationsToSolve summarizes the convergence-generation distribution
// over solved runs — the run-to-run variance observation of Fig. 4(a)
// ("the target fitness could be realized as early as generation 8 to
// as late as generation 160").
func (s *Study) GenerationsToSolve() stats.Summary {
	var gens []float64
	for _, r := range s.Results {
		if r.Solved {
			gens = append(gens, float64(len(r.History)))
		}
	}
	return stats.Summarize(gens)
}

// OpsPerGeneration pools the reproduction-op counts of every
// generation of every run (the Fig. 5a sample).
func (s *Study) OpsPerGeneration() []float64 {
	var out []float64
	for _, r := range s.Results {
		for _, g := range r.History {
			if g.Solved {
				continue
			}
			out = append(out, float64(g.CrossoverOps+g.MutationOps))
		}
	}
	return out
}

// FootprintsPerGeneration pools the footprint samples (Fig. 5b).
func (s *Study) FootprintsPerGeneration() []float64 {
	var out []float64
	for _, r := range s.Results {
		for _, g := range r.History {
			out = append(out, float64(g.FootprintBytes))
		}
	}
	return out
}

// MeanNormMaxByGeneration averages the normalized best fitness across
// runs per generation index (shorter runs stop contributing when they
// end) — the mean curve of Fig. 4a.
func (s *Study) MeanNormMaxByGeneration() []float64 {
	var out []float64
	for g := 0; ; g++ {
		var sum float64
		n := 0
		for _, r := range s.Results {
			if g < len(r.History) {
				sum += r.History[g].NormMax
				n++
			}
		}
		if n == 0 {
			return out
		}
		out = append(out, sum/float64(n))
	}
}
