package evolve

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"

	"repro/internal/hw/hwsim"
	"repro/internal/neat"
	"repro/internal/stats"
)

// Study runs N independent evolution runs of one workload in parallel —
// the paper's characterization methodology ("across 100 separate runs
// of each application") — and aggregates convergence statistics.

// StudyResult is one run's outcome.
type StudyResult struct {
	Run     int
	Solved  bool
	History []GenStats
	Err     error
}

// Study aggregates a batch of runs.
type Study struct {
	Workload string
	Results  []StudyResult
}

// RunSeed derives the seed of one study run from the study's base
// seed: a splitmix64 finalizer over base + (run+1)·golden-ratio. The
// old scheme (base + run·7919) made runs of nearby user-chosen seeds
// share streams — base 7919 run 0 replayed base 0 run 1 exactly. The
// mix decorrelates every (base, run) pair while staying a pure
// function of both, so studies remain reproducible.
func RunSeed(base uint64, run int) uint64 {
	x := base + 0x9E3779B97F4A7C15*uint64(run+1)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// StudyOptions tunes RunStudyContext beyond the required parameters.
type StudyOptions struct {
	// Sink receives per-generation records, tagged with the workload
	// name and run index; it must be safe for concurrent use
	// (hwsim.Log is). Nil discards.
	Sink hwsim.Sink
	// CheckpointDir, when set with CheckpointEvery, makes every run
	// checkpoint its population to <dir>/<workload>-run<NNN>.ckpt and
	// resume from that file when it already exists — an interrupted
	// study picks up each run at its last generation boundary.
	CheckpointDir string
	// CheckpointEvery is the per-run checkpoint interval in
	// generations; 0 disables periodic checkpoints (a cancelled run
	// still saves a final checkpoint when CheckpointDir is set).
	CheckpointEvery int
	// Parallelism caps the number of runs in flight; 0 means
	// runtime.NumCPU(). Callers embedding studies in a wider parallel
	// pipeline pass their own cap so total concurrency stays bounded.
	Parallelism int
}

// RunStudy executes runs independent evolutions, each up to
// maxGenerations, with per-run seeds derived by RunSeed. Concurrency
// is capped by a worker semaphore (runtime.NumCPU slots) rather than
// one unbounded goroutine per run, and every run's error is aggregated
// with errors.Join — a failing seed no longer masks failures in later
// runs.
func RunStudy(workload string, cfg neat.Config, runs, maxGenerations int, seed uint64) (*Study, error) {
	return RunStudyContext(context.Background(), workload, cfg, runs, maxGenerations, seed, StudyOptions{})
}

// RunStudyWithSink is RunStudy with cancellation and per-generation
// records flowing to sink (which may be nil).
func RunStudyWithSink(ctx context.Context, workload string, cfg neat.Config, runs, maxGenerations int, seed uint64, sink hwsim.Sink) (*Study, error) {
	return RunStudyContext(ctx, workload, cfg, runs, maxGenerations, seed, StudyOptions{Sink: sink})
}

// RunStudyContext is the full-control study entry point: cancellation
// via ctx, per-generation records, and per-run checkpoint/resume. A
// run that panics (e.g. inside a fitness evaluation path the worker
// pool does not cover) is recovered into that run's StudyResult.Err
// without taking down the study.
func RunStudyContext(ctx context.Context, workload string, cfg neat.Config, runs, maxGenerations int, seed uint64, opt StudyOptions) (*Study, error) {
	st := &Study{Workload: workload, Results: make([]StudyResult, runs)}
	slots := opt.Parallelism
	if slots <= 0 {
		slots = runtime.NumCPU()
	}
	sem := make(chan struct{}, slots)
	var wg sync.WaitGroup
	for run := 0; run < runs; run++ {
		wg.Add(1)
		go func(run int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			res := StudyResult{Run: run}
			defer func() {
				if p := recover(); p != nil {
					res.Err = fmt.Errorf("run panic: %v", p)
				}
				st.Results[run] = res
			}()
			if err := ctx.Err(); err != nil {
				res.Err = err
				return
			}
			r, err := NewRunner(workload, cfg, RunSeed(seed, run))
			if err != nil {
				res.Err = err
				return
			}
			r.Parallelism = 2 // the study itself provides the outer parallelism
			if opt.Sink != nil {
				r.Sink = hwsim.Tagged{Sink: opt.Sink, Workload: workload, Run: run}
			}
			if opt.CheckpointDir != "" {
				r.CheckpointPath = filepath.Join(opt.CheckpointDir,
					fmt.Sprintf("%s-run%03d.ckpt", workload, run))
				r.CheckpointEvery = opt.CheckpointEvery
				if _, serr := os.Stat(r.CheckpointPath); serr == nil {
					if rerr := r.RestoreCheckpoint(r.CheckpointPath); rerr != nil {
						res.Err = fmt.Errorf("restore checkpoint: %w", rerr)
						return
					}
				}
			}
			res.Solved, res.Err = r.Run(ctx, maxGenerations)
			res.History = r.History
		}(run)
	}
	wg.Wait()
	var errs []error
	for _, res := range st.Results {
		if res.Err != nil {
			errs = append(errs, fmt.Errorf("run %d: %w", res.Run, res.Err))
		}
	}
	return st, errors.Join(errs...)
}

// SolveRate is the fraction of runs that reached the target.
func (s *Study) SolveRate() float64 {
	if len(s.Results) == 0 {
		return 0
	}
	n := 0
	for _, r := range s.Results {
		if r.Solved {
			n++
		}
	}
	return float64(n) / float64(len(s.Results))
}

// GenerationsToSolve summarizes the convergence-generation distribution
// over solved runs — the run-to-run variance observation of Fig. 4(a)
// ("the target fitness could be realized as early as generation 8 to
// as late as generation 160").
func (s *Study) GenerationsToSolve() stats.Summary {
	var gens []float64
	for _, r := range s.Results {
		if r.Solved {
			gens = append(gens, float64(len(r.History)))
		}
	}
	return stats.Summarize(gens)
}

// OpsPerGeneration pools the reproduction-op counts of every
// generation of every run (the Fig. 5a sample).
func (s *Study) OpsPerGeneration() []float64 {
	var out []float64
	for _, r := range s.Results {
		for _, g := range r.History {
			if g.Solved {
				continue
			}
			out = append(out, float64(g.CrossoverOps+g.MutationOps))
		}
	}
	return out
}

// FootprintsPerGeneration pools the footprint samples (Fig. 5b).
func (s *Study) FootprintsPerGeneration() []float64 {
	var out []float64
	for _, r := range s.Results {
		for _, g := range r.History {
			out = append(out, float64(g.FootprintBytes))
		}
	}
	return out
}

// MeanNormMaxByGeneration averages the normalized best fitness across
// runs per generation index (shorter runs stop contributing when they
// end) — the mean curve of Fig. 4a.
func (s *Study) MeanNormMaxByGeneration() []float64 {
	var out []float64
	for g := 0; ; g++ {
		var sum float64
		n := 0
		for _, r := range s.Results {
			if g < len(r.History) {
				sum += r.History[g].NormMax
				n++
			}
		}
		if n == 0 {
			return out
		}
		out = append(out, sum/float64(n))
	}
}
