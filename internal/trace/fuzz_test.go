package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParse hardens the trace reader against malformed input: Parse
// must never panic, and anything it accepts must re-serialize and
// re-parse to the same structure.
func FuzzParse(f *testing.F) {
	f.Add("G 0 100\nP 1 50\nP 2 50\nC 10 1 2 50 10 1 1 0 0\n")
	f.Add("G 3 0\n")
	f.Add("")
	f.Add("X nonsense\n")
	f.Add("C 1 2 3 4\n")
	f.Add("G 0 1\nC 10 1 -1 5 0 0 0 0 0\n")
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := Parse(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			t.Fatalf("accepted trace failed to serialize: %v", err)
		}
		back, err := Parse(&buf)
		if err != nil {
			t.Fatalf("round trip failed to parse: %v", err)
		}
		if len(back.Generations) != len(tr.Generations) {
			t.Fatalf("round trip changed generation count: %d vs %d",
				len(back.Generations), len(tr.Generations))
		}
		for i := range tr.Generations {
			a, b := &tr.Generations[i], &back.Generations[i]
			if a.Index != b.Index || len(a.Children) != len(b.Children) ||
				len(a.ParentSizes) != len(b.ParentSizes) {
				t.Fatalf("generation %d changed across round trip", i)
			}
		}
	})
}
