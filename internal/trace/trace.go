// Package trace records reproduction-operation traces.
//
// The paper's evaluation methodology (Section VI-A) instruments the
// NEAT implementation to emit a trace in which "each line captures the
// generation, the child gene and genome id, the type of operation —
// mutation or crossover, and the parameters changed or added or deleted
// by the operations"; those traces then drive the EvE and ADAM hardware
// models. This package is that artifact: a neat.Recorder that organizes
// events per generation and per child, captures the parent genome sizes
// the gene-split logic streams, and serializes to a line-oriented text
// format.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/gene"
	"repro/internal/neat"
)

// ChildRecord accumulates the gene-level operations that produced one
// child genome — the work one EvE PE performs (one PE per child,
// Section IV-C5).
type ChildRecord struct {
	Child   int64
	Parent1 int64
	Parent2 int64 // -1 for mutation-only children
	// Ops tallies gene-level operations by type.
	Ops [neat.NumOps]int64
}

// TotalOps is the child's total gene-level op count.
func (c *ChildRecord) TotalOps() int64 {
	var n int64
	for _, v := range c.Ops {
		n += v
	}
	return n
}

// GenesStreamed approximates the genes streamed through the PE for this
// child: the crossover ops (one per aligned gene pair) plus structural
// additions.
func (c *ChildRecord) GenesStreamed() int64 {
	return c.Ops[neat.OpCrossover] + c.Ops[neat.OpAddNode] + c.Ops[neat.OpAddConn]
}

// Generation groups the reproduction of one generation.
type Generation struct {
	Index int
	// Children in creation order (the order the gene selector hands
	// them to the gene-split block).
	Children []ChildRecord
	// ParentSizes maps parent genome id → gene count, captured at the
	// start of reproduction; this is what the genome buffer must serve.
	ParentSizes map[int64]int
	// PopulationGenes is the total gene count of the parent population.
	PopulationGenes int

	childIdx map[int64]int
}

// Crossovers sums crossover ops across children.
func (g *Generation) Crossovers() int64 { return g.opTotal(neat.OpCrossover) }

// Mutations sums mutation ops across children.
func (g *Generation) Mutations() int64 {
	var n int64
	for op := neat.OpPerturb; op < neat.Op(neat.NumOps); op++ {
		n += g.opTotal(op)
	}
	return n
}

func (g *Generation) opTotal(op neat.Op) int64 {
	var n int64
	for i := range g.Children {
		n += g.Children[i].Ops[op]
	}
	return n
}

// ParentOf returns how many children used each parent — the
// genome-level-reuse profile the multicast NoC exploits.
func (g *Generation) ParentUse() map[int64]int {
	use := make(map[int64]int)
	for i := range g.Children {
		c := &g.Children[i]
		use[c.Parent1]++
		if c.Parent2 >= 0 {
			use[c.Parent2]++
		}
	}
	return use
}

// Trace is an ordered sequence of generation records. It implements
// neat.Recorder (via Record) and neat.GenerationStarter (via
// StartGeneration), so attaching it to a Population captures everything
// the hardware models need.
type Trace struct {
	Generations []Generation
}

// StartGeneration snapshots the parent population at the beginning of a
// reproduction round.
func (t *Trace) StartGeneration(gen int, genomes []*gene.Genome) {
	g := Generation{
		Index:       gen,
		ParentSizes: make(map[int64]int, len(genomes)),
		childIdx:    make(map[int64]int),
	}
	for _, gn := range genomes {
		g.ParentSizes[gn.ID] = gn.NumGenes()
		g.PopulationGenes += gn.NumGenes()
	}
	t.Generations = append(t.Generations, g)
}

// Record implements neat.Recorder.
func (t *Trace) Record(e neat.Event) {
	if len(t.Generations) == 0 || t.Generations[len(t.Generations)-1].Index != e.Generation {
		// Reproduction without a StartGeneration snapshot (e.g. a bare
		// Population): open an empty generation record.
		t.Generations = append(t.Generations, Generation{
			Index:       e.Generation,
			ParentSizes: map[int64]int{},
			childIdx:    map[int64]int{},
		})
	}
	g := &t.Generations[len(t.Generations)-1]
	idx, ok := g.childIdx[e.Child]
	if !ok {
		idx = len(g.Children)
		g.childIdx[e.Child] = idx
		g.Children = append(g.Children, ChildRecord{
			Child: e.Child, Parent1: e.Parent1, Parent2: e.Parent2,
		})
	}
	g.Children[idx].Ops[e.Op]++
}

// Last returns the most recent generation record, or nil.
func (t *Trace) Last() *Generation {
	if len(t.Generations) == 0 {
		return nil
	}
	return &t.Generations[len(t.Generations)-1]
}

// WriteTo serializes the trace in the paper's line format:
//
//	G <index> <populationGenes>
//	P <parentID> <genes>
//	C <childID> <parent1> <parent2> <ops per type...>
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	emit := func(format string, args ...any) error {
		m, err := fmt.Fprintf(bw, format, args...)
		n += int64(m)
		return err
	}
	for gi := range t.Generations {
		g := &t.Generations[gi]
		if err := emit("G %d %d\n", g.Index, g.PopulationGenes); err != nil {
			return n, err
		}
		// Sorted parent ids: serialization is a pure function of the
		// trace, so identical runs write identical bytes — the property
		// the content-addressed run store's idempotent commits lean on.
		ids := make([]int64, 0, len(g.ParentSizes))
		for id := range g.ParentSizes {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			if err := emit("P %d %d\n", id, g.ParentSizes[id]); err != nil {
				return n, err
			}
		}
		for ci := range g.Children {
			c := &g.Children[ci]
			if err := emit("C %d %d %d", c.Child, c.Parent1, c.Parent2); err != nil {
				return n, err
			}
			for _, v := range c.Ops {
				if err := emit(" %d", v); err != nil {
					return n, err
				}
			}
			if err := emit("\n"); err != nil {
				return n, err
			}
		}
	}
	return n, bw.Flush()
}

// Parse reads a trace previously produced by WriteTo.
func Parse(r io.Reader) (*Trace, error) {
	t := &Trace{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "G":
			var idx, popGenes int
			if _, err := fmt.Sscanf(text, "G %d %d", &idx, &popGenes); err != nil {
				return nil, fmt.Errorf("trace: line %d: %w", line, err)
			}
			t.Generations = append(t.Generations, Generation{
				Index:           idx,
				PopulationGenes: popGenes,
				ParentSizes:     map[int64]int{},
				childIdx:        map[int64]int{},
			})
		case "P":
			if len(t.Generations) == 0 {
				return nil, fmt.Errorf("trace: line %d: P before G", line)
			}
			var id int64
			var sz int
			if _, err := fmt.Sscanf(text, "P %d %d", &id, &sz); err != nil {
				return nil, fmt.Errorf("trace: line %d: %w", line, err)
			}
			t.Generations[len(t.Generations)-1].ParentSizes[id] = sz
		case "C":
			if len(t.Generations) == 0 {
				return nil, fmt.Errorf("trace: line %d: C before G", line)
			}
			if len(fields) != 4+neat.NumOps {
				return nil, fmt.Errorf("trace: line %d: want %d fields, have %d",
					line, 4+neat.NumOps, len(fields))
			}
			var c ChildRecord
			if _, err := fmt.Sscanf(strings.Join(fields[1:4], " "), "%d %d %d",
				&c.Child, &c.Parent1, &c.Parent2); err != nil {
				return nil, fmt.Errorf("trace: line %d: %w", line, err)
			}
			for i := 0; i < neat.NumOps; i++ {
				if _, err := fmt.Sscanf(fields[4+i], "%d", &c.Ops[i]); err != nil {
					return nil, fmt.Errorf("trace: line %d: %w", line, err)
				}
			}
			g := &t.Generations[len(t.Generations)-1]
			g.childIdx[c.Child] = len(g.Children)
			g.Children = append(g.Children, c)
		default:
			return nil, fmt.Errorf("trace: line %d: unknown record %q", line, fields[0])
		}
	}
	return t, sc.Err()
}
