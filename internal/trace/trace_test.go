package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/neat"
	"repro/internal/rng"
)

// evolveTrace runs a few NEAT generations with a Trace attached.
func evolveTrace(t *testing.T, generations int) *Trace {
	t.Helper()
	cfg := neat.DefaultConfig(3, 2)
	cfg.PopulationSize = 30
	pop, err := neat.NewPopulation(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	tr := &Trace{}
	pop.SetRecorder(tr)
	r := rng.New(9)
	for g := 0; g < generations; g++ {
		for _, gn := range pop.Genomes {
			gn.Fitness = r.Float64()
		}
		if _, err := pop.Epoch(); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

func TestTraceCapturesGenerations(t *testing.T) {
	tr := evolveTrace(t, 3)
	if len(tr.Generations) != 3 {
		t.Fatalf("trace has %d generations", len(tr.Generations))
	}
	for i, g := range tr.Generations {
		if g.Index != i {
			t.Fatalf("generation %d has index %d", i, g.Index)
		}
		if len(g.ParentSizes) != 30 {
			t.Fatalf("generation %d snapshot has %d parents", i, len(g.ParentSizes))
		}
		if g.PopulationGenes <= 0 {
			t.Fatalf("generation %d: no population genes", i)
		}
		if len(g.Children) == 0 {
			t.Fatalf("generation %d: no children", i)
		}
		if g.Crossovers() == 0 {
			t.Fatalf("generation %d: no crossover ops", i)
		}
		if g.Mutations() == 0 {
			t.Fatalf("generation %d: no mutation ops", i)
		}
	}
}

func TestChildRecordsConsistent(t *testing.T) {
	tr := evolveTrace(t, 2)
	g := tr.Last()
	for i := range g.Children {
		c := &g.Children[i]
		if c.TotalOps() <= 0 {
			t.Fatalf("child %d has no ops", c.Child)
		}
		if c.Parent1 < 0 {
			t.Fatalf("child %d has no primary parent", c.Child)
		}
		if c.Parent2 >= 0 && c.Ops[neat.OpCrossover] == 0 {
			t.Fatalf("two-parent child %d has no crossover ops", c.Child)
		}
		if c.GenesStreamed() < 0 {
			t.Fatalf("child %d streamed %d genes", c.Child, c.GenesStreamed())
		}
	}
}

func TestParentUseMatchesReuse(t *testing.T) {
	tr := evolveTrace(t, 1)
	use := tr.Last().ParentUse()
	if len(use) == 0 {
		t.Fatal("no parent usage")
	}
	total := 0
	for id, n := range use {
		if n <= 0 {
			t.Fatalf("parent %d used %d times", id, n)
		}
		total += n
	}
	// Every non-elite child uses at least one parent.
	if total < len(tr.Last().Children) {
		t.Fatalf("parent use total %d below child count %d", total, len(tr.Last().Children))
	}
}

func TestRoundTripSerialization(t *testing.T) {
	tr := evolveTrace(t, 2)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Generations) != len(tr.Generations) {
		t.Fatalf("round trip lost generations: %d vs %d",
			len(back.Generations), len(tr.Generations))
	}
	for i := range tr.Generations {
		a, b := &tr.Generations[i], &back.Generations[i]
		if a.Index != b.Index || a.PopulationGenes != b.PopulationGenes {
			t.Fatalf("generation header mismatch at %d", i)
		}
		if len(a.Children) != len(b.Children) {
			t.Fatalf("children mismatch at %d: %d vs %d", i, len(a.Children), len(b.Children))
		}
		for j := range a.Children {
			if a.Children[j] != b.Children[j] {
				t.Fatalf("child %d/%d mismatch: %+v vs %+v", i, j, a.Children[j], b.Children[j])
			}
		}
		if len(a.ParentSizes) != len(b.ParentSizes) {
			t.Fatalf("parent sizes mismatch at %d", i)
		}
		for id, sz := range a.ParentSizes {
			if b.ParentSizes[id] != sz {
				t.Fatalf("parent %d size %d vs %d", id, sz, b.ParentSizes[id])
			}
		}
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	cases := []string{
		"X 1 2\n",
		"P 1 2\n",          // P before G
		"C 1 2 3 4\n",      // C before G
		"G 0 100\nC 1 2\n", // short C record
	}
	for _, c := range cases {
		if _, err := Parse(strings.NewReader(c)); err == nil {
			t.Fatalf("accepted %q", c)
		}
	}
}

func TestParseSkipsBlankLines(t *testing.T) {
	tr, err := Parse(strings.NewReader("\nG 0 10\n\nP 1 10\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Generations) != 1 || tr.Generations[0].ParentSizes[1] != 10 {
		t.Fatalf("parsed %+v", tr.Generations)
	}
}

func TestLastOnEmpty(t *testing.T) {
	var tr Trace
	if tr.Last() != nil {
		t.Fatal("Last on empty trace should be nil")
	}
}

func TestRecordWithoutSnapshot(t *testing.T) {
	var tr Trace
	tr.Record(neat.Event{Generation: 5, Child: 1, Parent1: 2, Parent2: 3, Op: neat.OpCrossover})
	if len(tr.Generations) != 1 || tr.Generations[0].Index != 5 {
		t.Fatalf("bare Record mishandled: %+v", tr.Generations)
	}
}
