package repro

// Cross-module integration tests: the full closed loop of the paper,
// exercised end to end across the algorithm, environment, trace and
// hardware layers.

import (
	"bytes"
	"context"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/evolve"
	"repro/internal/gene"
	"repro/internal/hw/eve"
	"repro/internal/hw/noc"
	"repro/internal/neat"
	"repro/internal/trace"
)

// TestClosedLoopSolvesCartPoleWithHW runs the complete GeneSys loop —
// evaluation, trace capture, chip accounting, reproduction — until the
// task is solved, then checks the hardware ledger is self-consistent.
func TestClosedLoopSolvesCartPoleWithHW(t *testing.T) {
	sys, err := core.New(core.Config{
		Workload: "cartpole", Seed: 19, Population: 100, HardwareInLoop: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := sys.Run(30)
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Solved {
		t.Fatalf("cartpole unsolved in 30 generations (best %v)", sum.BestFitness)
	}
	var cycles int64
	var energy float64
	for _, res := range sys.History {
		if !res.HasHW {
			t.Fatal("hardware report missing")
		}
		cycles += res.HW.TotalCycles
		energy += res.HW.TotalEnergyPJ
		// The chip's cycle ledger must decompose exactly.
		want := res.HW.Inference.TotalCycles +
			res.HW.ScratchpadToADAMCycles + res.HW.ADAMToScratchpadCycles +
			res.HW.Evolution.TotalCycles
		if res.HW.TotalCycles != want {
			t.Fatalf("cycle ledger broken: %d != %d", res.HW.TotalCycles, want)
		}
	}
	if sum.TotalCycles != cycles || sum.TotalEnergyPJ != energy {
		t.Fatal("summary does not equal the per-generation ledger")
	}
	// Sanity: solving cartpole must cost far less than a joule.
	if energy*1e-12 > 0.001 {
		t.Fatalf("implausible chip energy: %v J", energy*1e-12)
	}
}

// TestTraceDrivenReplayMatchesLiveCounters verifies the paper's
// methodology end to end: serializing a trace and replaying it through
// EvE gives the same account as replaying the live trace.
func TestTraceDrivenReplayMatchesLiveCounters(t *testing.T) {
	cfg := neat.DefaultConfig(1, 1)
	cfg.PopulationSize = 40
	r, err := evolve.NewRunner("lunarlander", cfg, 23)
	if err != nil {
		t.Fatal(err)
	}
	tr := &trace.Trace{}
	r.SetRecorder(tr)
	if _, err := r.Run(context.Background(), 3); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := trace.Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}

	live := eve.New(eve.DefaultConfig(256, noc.MulticastTree), nil)
	replayed := eve.New(eve.DefaultConfig(256, noc.MulticastTree), nil)
	for i := range tr.Generations {
		a := live.RunGeneration(&tr.Generations[i])
		b := replayed.RunGeneration(&parsed.Generations[i])
		if a != b {
			t.Fatalf("generation %d: live %+v != replayed %+v", i, a, b)
		}
	}
}

// TestOpsCountersAgreeAcrossLayers checks that the algorithm layer's
// op counters, the trace layer's tallies, and the EvE model's GeneOps
// all describe the same reproduction.
func TestOpsCountersAgreeAcrossLayers(t *testing.T) {
	cfg := neat.DefaultConfig(1, 1)
	cfg.PopulationSize = 50
	r, err := evolve.NewRunner("mountaincar", cfg, 29)
	if err != nil {
		t.Fatal(err)
	}
	tr := &trace.Trace{}
	r.SetRecorder(tr)
	st, err := r.Step(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	g := tr.Last()
	if g == nil {
		t.Fatal("no trace generation")
	}
	traceOps := g.Crossovers() + g.Mutations()
	statsOps := st.CrossoverOps + st.MutationOps
	if traceOps != statsOps {
		t.Fatalf("trace ops %d != stats ops %d", traceOps, statsOps)
	}
	rep := eve.New(eve.DefaultConfig(64, noc.MulticastTree), nil).RunGeneration(g)
	if rep.GeneOps != traceOps {
		t.Fatalf("EvE replay ops %d != trace ops %d", rep.GeneOps, traceOps)
	}
}

// TestHWAndSWReproductionSameRegime compares the functional hardware
// datapath against software NEAT on the same parent population: the
// per-child op counts must land in the same regime (they are different
// stochastic processes, but both stream every gene of every child).
func TestHWAndSWReproductionSameRegime(t *testing.T) {
	cfg := neat.DefaultConfig(4, 2)
	cfg.PopulationSize = 60
	pop, err := neat.NewPopulation(cfg, 31)
	if err != nil {
		t.Fatal(err)
	}
	var counts neat.OpCounts
	pop.SetRecorder(&counts)
	for i, g := range pop.Genomes {
		g.Fitness = float64(i)
	}
	snapshot := append([]*gene.Genome(nil), pop.Genomes...)
	if _, err := pop.Epoch(); err != nil {
		t.Fatal(err)
	}
	swOps := counts.Total()

	h := eve.NewHardwareReproducer(31)
	children := h.NextGeneration(snapshot, 60)
	if len(children) != 60 {
		t.Fatal("hardware reproduction short")
	}
	hwStreamed := int64(h.Stats.CyclesStreamed)
	ratio := float64(swOps) / float64(hwStreamed)
	if ratio < 0.2 || ratio > 5 {
		t.Fatalf("sw ops (%d) and hw streamed genes (%d) in different regimes (ratio %.2f)",
			swOps, hwStreamed, ratio)
	}
}

// TestEnergyOrdersOfMagnitude pins the headline: for the same measured
// generation, the chip's evolution energy sits orders of magnitude
// under every baseline's.
func TestEnergyOrdersOfMagnitude(t *testing.T) {
	sys, err := core.New(core.Config{
		Workload: "alien-ram", Seed: 37, Population: 32, HardwareInLoop: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.RunGeneration()
	if err != nil {
		t.Fatal(err)
	}
	chipJ := res.HW.Evolution.TotalEnergyPJ() * 1e-12
	if chipJ <= 0 {
		t.Fatal("no evolution energy")
	}
	// A Python-class CPU at ~1 µs and 45 W per gene op:
	ops := float64(res.Stats.CrossoverOps + res.Stats.MutationOps)
	cpuJ := ops * 1e-6 * 45
	orders := math.Log10(cpuJ / chipJ)
	if orders < 3 {
		t.Fatalf("only %.1f orders of magnitude vs software CPU", orders)
	}
	t.Logf("evolution energy: chip %.3g J vs CPU-model %.3g J (%.1f orders)",
		chipJ, cpuJ, orders)
}
