package repro

// Ablation benchmarks for the design choices DESIGN.md calls out —
// each isolates one decision the paper makes and measures what it buys,
// beyond the figures the paper itself reports:
//
//   - greedy (GLR-aware) vs FIFO PE allocation;
//   - multicast tree vs point-to-point NoC (at the engine level);
//   - packed (PLP) vs serial ADAM scheduling;
//   - speciation + fitness sharing on vs off;
//   - global vs hardware-local node-id assignment;
//   - quantized (hardware) vs full-precision inference fidelity.

import (
	"context"
	"math"
	"testing"

	"repro/internal/evolve"
	"repro/internal/gene"
	"repro/internal/hw/adam"
	"repro/internal/hw/eve"
	"repro/internal/hw/noc"
	"repro/internal/hypernet"
	"repro/internal/neat"
	"repro/internal/network"
	"repro/internal/trace"
)

// ablationTrace evolves alien-ram briefly and returns the last
// reproduction generation (heavy GLP/GLR workload).
func ablationTrace(b *testing.B) *trace.Generation {
	b.Helper()
	cfg := neat.DefaultConfig(1, 1)
	cfg.PopulationSize = 48
	r, err := evolve.NewRunner("alien-ram", cfg, 11)
	if err != nil {
		b.Fatal(err)
	}
	tr := &trace.Trace{}
	r.SetRecorder(tr)
	if _, err := r.Run(context.Background(), 2); err != nil {
		b.Fatal(err)
	}
	return tr.Last()
}

func BenchmarkAblation_PEAllocation(b *testing.B) {
	g := ablationTrace(b)
	var greedy, fifo eve.Report
	for i := 0; i < b.N; i++ {
		// Few PEs → many waves, where co-scheduling siblings matters.
		gc := eve.DefaultConfig(8, noc.MulticastTree)
		fc := gc
		fc.Allocation = eve.AllocFIFO
		greedy = eve.New(gc, nil).RunGeneration(g)
		fifo = eve.New(fc, nil).RunGeneration(g)
	}
	if greedy.SRAMReads > fifo.SRAMReads {
		b.Fatalf("greedy allocation reads more than FIFO: %d vs %d",
			greedy.SRAMReads, fifo.SRAMReads)
	}
	b.ReportMetric(float64(fifo.SRAMReads)/float64(greedy.SRAMReads), "fifo/greedy-reads")
}

func BenchmarkAblation_NoC(b *testing.B) {
	g := ablationTrace(b)
	var mc, p2p eve.Report
	for i := 0; i < b.N; i++ {
		mc = eve.New(eve.DefaultConfig(256, noc.MulticastTree), nil).RunGeneration(g)
		p2p = eve.New(eve.DefaultConfig(256, noc.PointToPoint), nil).RunGeneration(g)
	}
	if mc.SRAMReads >= p2p.SRAMReads {
		b.Fatal("multicast did not reduce SRAM reads")
	}
	b.ReportMetric(float64(p2p.SRAMReads)/float64(mc.SRAMReads), "p2p/mcast-reads")
	b.ReportMetric(p2p.SRAMEnergyPJ/mc.SRAMEnergyPJ, "p2p/mcast-energy")
}

func BenchmarkAblation_ADAMScheduling(b *testing.B) {
	// A population of cartpole-sized plans.
	g := gene.NewGenome(1)
	for i := int32(0); i < 4; i++ {
		g.PutNode(gene.NewNode(i, gene.Input))
	}
	g.PutNode(gene.NewNode(4, gene.Output))
	for i := int32(0); i < 4; i++ {
		g.PutConn(gene.NewConn(i, 4, 0.5))
	}
	n, err := network.New(g)
	if err != nil {
		b.Fatal(err)
	}
	jobs := make([]adam.Job, 150)
	for i := range jobs {
		jobs[i] = adam.Job{Plan: n.BuildPlan(false), Steps: 200}
	}
	var packed, serial adam.Report
	for i := 0; i < b.N; i++ {
		pc := adam.DefaultConfig()
		sc := pc
		sc.Packed = false
		packed = adam.New(pc).RunGeneration(jobs)
		serial = adam.New(sc).RunGeneration(jobs)
	}
	if packed.ComputeCycles >= serial.ComputeCycles {
		b.Fatal("packed scheduling not faster than serial")
	}
	b.ReportMetric(float64(serial.ComputeCycles)/float64(packed.ComputeCycles), "serial/packed-cycles")
}

// BenchmarkAblation_Speciation compares convergence with and without
// NEAT's speciation protection (compat threshold huge → one species).
func BenchmarkAblation_Speciation(b *testing.B) {
	run := func(threshold float64) float64 {
		cfg := neat.DefaultConfig(1, 1)
		cfg.PopulationSize = 64
		cfg.CompatThreshold = threshold
		r, err := evolve.NewRunner("lunarlander", cfg, 9)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := r.Run(context.Background(), 15); err != nil {
			b.Fatal(err)
		}
		return r.Last().MaxFitness
	}
	var with, without float64
	for i := 0; i < b.N; i++ {
		with = run(3.0)
		without = run(1e9)
	}
	b.ReportMetric(with, "fitness-speciated")
	b.ReportMetric(without, "fitness-single-species")
}

// BenchmarkAblation_NodeIDAssignment compares the neat-python global
// counter against the hardware-local max+1 rule.
func BenchmarkAblation_NodeIDAssignment(b *testing.B) {
	run := func(local bool) (float64, int) {
		cfg := neat.DefaultConfig(1, 1)
		cfg.PopulationSize = 64
		cfg.LocalNodeIDs = local
		r, err := evolve.NewRunner("mountaincar", cfg, 13)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := r.Run(context.Background(), 10); err != nil {
			b.Fatal(err)
		}
		return r.Last().MaxFitness, r.Last().TotalGenes
	}
	var gFit, lFit float64
	var gGenes, lGenes int
	for i := 0; i < b.N; i++ {
		gFit, gGenes = run(false)
		lFit, lGenes = run(true)
	}
	b.ReportMetric(gFit, "fitness-global-ids")
	b.ReportMetric(lFit, "fitness-local-ids")
	b.ReportMetric(float64(gGenes), "genes-global")
	b.ReportMetric(float64(lGenes), "genes-local")
}

// BenchmarkAblation_BufferSpill measures the DRAM-backing penalty: the
// same generation accounted with the working set resident on-chip vs
// spilled past the 1.5 MB genome buffer ("backed by DRAM for cases
// when the genomes do not fit").
func BenchmarkAblation_BufferSpill(b *testing.B) {
	g := ablationTrace(b)
	var onchip, spilled float64
	for i := 0; i < b.N; i++ {
		fit := eve.New(eve.DefaultConfig(256, noc.MulticastTree), nil)
		fit.Buffer().SetResidency(fit.Buffer().Config().CapacityWords())
		fit.RunGeneration(g)
		onchip = fit.Buffer().EnergyPJ()

		over := eve.New(eve.DefaultConfig(256, noc.MulticastTree), nil)
		over.Buffer().SetResidency(4 * over.Buffer().Config().CapacityWords())
		over.RunGeneration(g)
		spilled = over.Buffer().EnergyPJ()
	}
	if spilled <= onchip {
		b.Fatal("spilling did not cost energy")
	}
	b.ReportMetric(spilled/onchip, "spill-energy-x")
}

// BenchmarkAblation_IndirectEncoding measures the HyperNEAT buffer
// win: genome-buffer genes under direct vs CPPN encoding for a
// RAM-scale substrate.
func BenchmarkAblation_IndirectEncoding(b *testing.B) {
	cfg := hypernet.CPPNConfig()
	cfg.PopulationSize = 10
	pop, err := neat.NewPopulation(cfg, 9)
	if err != nil {
		b.Fatal(err)
	}
	sub, err := hypernet.GridSubstrate(128, 64, 18)
	if err != nil {
		b.Fatal(err)
	}
	sub.WeightThreshold = 0
	var ratio float64
	for i := 0; i < b.N; i++ {
		cppn := pop.Genomes[0]
		pheno, err := hypernet.Decode(cppn, sub)
		if err != nil {
			b.Fatal(err)
		}
		ratio = hypernet.CompressionRatio(cppn, pheno)
	}
	if ratio < 50 {
		b.Fatalf("compression only %v×", ratio)
	}
	b.ReportMetric(ratio, "genes-compression-x")
}

// BenchmarkAblation_Lamarckian measures the future-directions hybrid:
// evolution plus local weight refinement of the elite, at equal
// generation budgets.
func BenchmarkAblation_Lamarckian(b *testing.B) {
	run := func(refine bool) float64 {
		cfg := neat.DefaultConfig(1, 1)
		cfg.PopulationSize = 40
		r, err := evolve.NewRunner("mountaincar", cfg, 21)
		if err != nil {
			b.Fatal(err)
		}
		best := 0.0
		for g := 0; g < 6; g++ {
			st, err := r.Step(context.Background())
			if err != nil {
				b.Fatal(err)
			}
			if st.MaxFitness > best {
				best = st.MaxFitness
			}
			if refine {
				res, err := r.RefineBest(10, uint64(g))
				if err != nil {
					b.Fatal(err)
				}
				if res.FitnessEnd > best {
					best = res.FitnessEnd
				}
			}
		}
		return best
	}
	var plain, hybrid float64
	for i := 0; i < b.N; i++ {
		plain = run(false)
		hybrid = run(true)
	}
	b.ReportMetric(plain, "fitness-evolution-only")
	b.ReportMetric(hybrid, "fitness-lamarckian")
}

// BenchmarkAblation_Quantization measures the inference deviation
// introduced by the 64-bit gene word's fixed-point attributes.
func BenchmarkAblation_Quantization(b *testing.B) {
	cfg := neat.DefaultConfig(4, 2)
	cfg.PopulationSize = 30
	pop, err := neat.NewPopulation(cfg, 5)
	if err != nil {
		b.Fatal(err)
	}
	for gen := 0; gen < 6; gen++ {
		for i, g := range pop.Genomes {
			g.Fitness = float64(i % 11)
		}
		if _, err := pop.Epoch(); err != nil {
			b.Fatal(err)
		}
	}
	obs := []float64{0.2, -0.4, 1.1, 0.6}
	var worst float64
	for i := 0; i < b.N; i++ {
		worst = 0
		for _, g := range pop.Genomes {
			full, err := network.New(g)
			if err != nil {
				b.Fatal(err)
			}
			quant, err := network.New(gene.FromWords(g.ID, g.Pack()))
			if err != nil {
				b.Fatal(err)
			}
			a, _ := full.Feed(obs)
			q, _ := quant.Feed(obs)
			for j := range a {
				if d := math.Abs(a[j] - q[j]); d > worst {
					worst = d
				}
			}
		}
	}
	if worst > 0.05 {
		b.Fatalf("quantization error %v too large", worst)
	}
	b.ReportMetric(worst, "max-output-error")
}
