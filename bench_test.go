// Package repro's root benchmark harness regenerates every table and
// figure of the paper's evaluation. One benchmark per experiment: each
// runs the real pipeline (evolution → traces → hardware models →
// baseline models), asserts the paper's qualitative result (the shape:
// who wins, by roughly what factor), reports the headline number as a
// custom benchmark metric, and writes the rendered rows to
// results/<id>.txt.
//
//	go test -bench=. -benchmem
//
// Scale note: benchmarks default to a reduced population (64 control /
// 32 RAM) so the whole harness completes in minutes. For paper-scale
// numbers run `go run ./cmd/experiments -run all -pop 150 -ram-pop 150`.
package repro

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/experiments"
)

// benchOpt is the shared fidelity for the regeneration benches.
func benchOpt() experiments.Options {
	return experiments.Options{
		Seed:           42,
		Runs:           2,
		MaxGenerations: 20,
		Population:     64,
		RAMPopulation:  32,
		RAMGenerations: 5,
	}
}

// regenerate runs one experiment once per benchmark iteration, writing
// the rendered output on the first. The shared run cache is dropped
// before every iteration so each figure bench still measures its own
// cold-cache cost, comparable across the BENCH_*.json trajectory; the
// warm-harness number lives in BenchmarkExperimentSuite.
func regenerate(b *testing.B, id string) *experiments.Result {
	b.Helper()
	var res *experiments.Result
	var err error
	for i := 0; i < b.N; i++ {
		experiments.ResetCaches()
		res, err = experiments.Run(id, benchOpt())
		if err != nil {
			b.Fatal(err)
		}
	}
	if err := os.MkdirAll("results", 0o755); err != nil {
		b.Fatal(err)
	}
	f, err := os.Create(filepath.Join("results", id+".txt"))
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	if err := res.Render(f); err != nil {
		b.Fatal(err)
	}
	return res
}

// first returns the first value of a named series.
func first(b *testing.B, r *experiments.Result, name string) float64 {
	b.Helper()
	v, ok := r.Series[name]
	if !ok || len(v) == 0 {
		b.Fatalf("series %q missing (have %v)", name, keys(r))
	}
	return v[0]
}

func keys(r *experiments.Result) []string {
	var out []string
	for k := range r.Series {
		out = append(out, k)
	}
	sort.Strings(out) // deterministic failure messages
	return out
}

// --- Section III characterization ---

func BenchmarkTableI_Environments(b *testing.B) {
	r := regenerate(b, "table1")
	if first(b, r, "obs:alien-ram") != 128 {
		b.Fatal("alien-ram observation width wrong")
	}
}

func BenchmarkFig2_EvolutionCurve(b *testing.B) {
	r := regenerate(b, "fig2")
	maxes := r.Series["max"]
	if len(maxes) < 2 {
		b.Fatalf("too few generations: %v", maxes)
	}
	b.ReportMetric(maxes[len(maxes)-1], "final-norm-fitness")
}

func BenchmarkFig4a_Fitness(b *testing.B) {
	r := regenerate(b, "fig4a")
	// Every workload must make progress toward the target.
	for _, wl := range []string{"cartpole", "lunarlander", "mountaincar", "asterix-ram"} {
		final := first(b, r, wl+":final")
		if final <= 0 {
			b.Fatalf("%s made no progress: %v", wl, final)
		}
	}
	b.ReportMetric(first(b, r, "cartpole:final"), "cartpole-final-norm")
}

func BenchmarkFig4b_NumGenes(b *testing.B) {
	r := regenerate(b, "fig4b")
	control := first(b, r, "cartpole:genesPerGenome")
	ram := first(b, r, "alien-ram:genesPerGenome")
	// The paper's two classes: RAM genomes orders of magnitude larger.
	if ram < 50*control {
		b.Fatalf("gene-scale classes collapsed: control %v, ram %v", control, ram)
	}
	b.ReportMetric(ram, "alien-genes-per-genome")
}

func BenchmarkFig4c_ParentReuse(b *testing.B) {
	r := regenerate(b, "fig4c")
	best := 0.0
	for k, v := range r.Series {
		if strings.HasSuffix(k, ":maxReuse") && v[0] > best {
			best = v[0]
		}
	}
	if best < 2 {
		b.Fatalf("no genome-level reuse observed (max %v)", best)
	}
	b.ReportMetric(best, "max-parent-reuse")
}

func BenchmarkFig5a_OpsDistribution(b *testing.B) {
	r := regenerate(b, "fig5a")
	control := first(b, r, "cartpole:medianOps")
	ram := first(b, r, "alien-ram:medianOps")
	if ram < 20*control {
		b.Fatalf("op-count classes collapsed: %v vs %v", control, ram)
	}
	b.ReportMetric(ram, "alien-median-ops")
}

func BenchmarkFig5b_Footprint(b *testing.B) {
	r := regenerate(b, "fig5b")
	// Control workloads stay well under 1 MB at paper population.
	if v := first(b, r, "cartpole:maxFootprint"); v >= 1<<20 {
		b.Fatalf("cartpole footprint %v B ≥ 1 MB", v)
	}
	b.ReportMetric(first(b, r, "amidar-ram:maxFootprint")/1024, "amidar-KB")
}

// --- Table II / Table III ---

func BenchmarkTableII_DQNvsEA(b *testing.B) {
	r := regenerate(b, "table2")
	cr := first(b, r, "computeRatio")
	mr := first(b, r, "memoryRatio")
	if cr < 5 || mr < 10 {
		b.Fatalf("DQN vs EA advantage collapsed: compute %v memory %v", cr, mr)
	}
	b.ReportMetric(cr, "compute-ratio")
	b.ReportMetric(mr, "memory-ratio")
}

func BenchmarkFootnote1_NEvsRL(b *testing.B) {
	r := regenerate(b, "footnote1")
	// NEAT must make progress on both tasks; DQN's mountaincar delta
	// stays near zero (sparse reward), the footnote's observation.
	if first(b, r, "cartpole:neatEnd") <= 0 {
		b.Fatal("NEAT made no progress on cartpole")
	}
	b.ReportMetric(first(b, r, "mountaincar:dqnDelta"), "dqn-mountaincar-delta")
	b.ReportMetric(first(b, r, "cartpole:dqnDelta"), "dqn-cartpole-delta")
}

func BenchmarkTableIII_Configurations(b *testing.B) {
	r := regenerate(b, "table3")
	if first(b, r, "configs") != 9 {
		b.Fatal("Table III must list 8 baselines + GENESYS")
	}
}

// --- Fig. 8: implementation ---

func BenchmarkFig8a_SoCParams(b *testing.B) {
	r := regenerate(b, "fig8a")
	p := first(b, r, "power")
	if p < 900 || p > 1000 {
		b.Fatalf("roofline power %v mW off the paper's 947.5", p)
	}
	b.ReportMetric(p, "roofline-mW")
	b.ReportMetric(first(b, r, "area"), "area-mm2")
}

func BenchmarkFig8b_PowerSweep(b *testing.B) {
	r := regenerate(b, "fig8b")
	net := r.Series["net"]
	if net[len(net)-1] <= 1000 {
		b.Fatal("512-PE design should exceed 1 W")
	}
}

func BenchmarkFig8c_AreaSweep(b *testing.B) {
	r := regenerate(b, "fig8c")
	tot := r.Series["total"]
	if tot[len(tot)-1] <= tot[0] {
		b.Fatal("area sweep not monotonic")
	}
}

// --- Fig. 9: runtime & energy vs CPU/GPU ---

func BenchmarkFig9a_InferenceRuntime(b *testing.B) {
	r := regenerate(b, "fig9a")
	sp := first(b, r, "alien-ram:speedupVsBestGPU")
	if sp < 3 {
		b.Fatalf("GeneSys inference speedup vs best GPU only %v", sp)
	}
	plp := first(b, r, "cartpole:cpuPLPSpeedup")
	if plp < 3 || plp > 4 {
		b.Fatalf("CPU PLP speedup %v, paper measured 3.5", plp)
	}
	b.ReportMetric(sp, "speedup-vs-best-GPU")
}

func BenchmarkFig9b_InferenceEnergy(b *testing.B) {
	r := regenerate(b, "fig9b")
	eff := first(b, r, "cartpole:efficiencyVsBest")
	if eff < 10 {
		b.Fatalf("inference energy efficiency only %v×", eff)
	}
	b.ReportMetric(eff, "efficiency-x")
}

func BenchmarkFig9c_EvolutionRuntime(b *testing.B) {
	r := regenerate(b, "fig9c")
	sp := first(b, r, "alien-ram:cpuSpeedup")
	if sp < 100 {
		b.Fatalf("EvE evolution speedup vs CPU_a only %v", sp)
	}
	b.ReportMetric(sp, "speedup-vs-CPU_a")
}

func BenchmarkFig9d_EvolutionEnergy(b *testing.B) {
	r := regenerate(b, "fig9d")
	eff := first(b, r, "alien-ram:evolutionEfficiency")
	// The paper's headline: 4–5 orders of magnitude vs the GPUs.
	if eff < 1e3 {
		b.Fatalf("evolution energy efficiency only %v×", eff)
	}
	b.ReportMetric(eff, "efficiency-x")
}

// --- Fig. 10: time distribution & footprint ---

func BenchmarkFig10ab_GPUTimeSplit(b *testing.B) {
	r := regenerate(b, "fig10ab")
	fa := first(b, r, "GPU_a:cartpole:memcpyFrac")
	if fa < 0.4 {
		b.Fatalf("GPU_a memcpy fraction %v (paper ~0.70)", fa)
	}
	fb := first(b, r, "GPU_b:alien-ram:memcpyFrac")
	if fb >= fa {
		b.Fatalf("GPU_b (%v) should be less memcpy-bound than GPU_a (%v)", fb, fa)
	}
	b.ReportMetric(fa*100, "GPU_a-memcpy-%")
	b.ReportMetric(fb*100, "GPU_b-memcpy-%")
}

func BenchmarkFig10c_GenesysTimeSplit(b *testing.B) {
	r := regenerate(b, "fig10c")
	f := first(b, r, "cartpole:movementFrac")
	if f <= 0 || f >= 0.9 {
		b.Fatalf("GeneSys data-movement fraction %v", f)
	}
	b.ReportMetric(f*100, "movement-%")
}

func BenchmarkFig10d_MemFootprint(b *testing.B) {
	r := regenerate(b, "fig10d")
	for _, wl := range []string{"mountaincar", "amidar-ram"} {
		if v := first(b, r, wl+":gpuB/genesys"); v < 3 {
			b.Fatalf("%s: GPU_b/GeneSys footprint ratio %v", wl, v)
		}
		if v := first(b, r, wl+":genesys/gpuA"); v < 3 {
			b.Fatalf("%s: GeneSys/GPU_a footprint ratio %v", wl, v)
		}
	}
	b.ReportMetric(first(b, r, "amidar-ram:gpuB/genesys"), "GPU_b-over-GeneSys")
}

// --- Pareto fronts: multi-objective evolution (PR10) ---

func BenchmarkParetoFront(b *testing.B) {
	r := regenerate(b, "pareto")
	for _, wl := range []string{"cartpole", "lunarlander", "mountaincar"} {
		size := first(b, r, wl+":frontSize")
		if size < 1 {
			b.Fatalf("%s produced an empty Pareto front", wl)
		}
		if pop := 64.0; size > pop {
			b.Fatalf("%s front size %v exceeds the population", wl, size)
		}
	}
	b.ReportMetric(first(b, r, "cartpole:frontSize"), "cartpole-front-size")
	b.ReportMetric(first(b, r, "cartpole:bestFitness"), "cartpole-best-fitness")
}

// --- Fig. 11: design choices ---

func BenchmarkFig11a_GeneComposition(b *testing.B) {
	r := regenerate(b, "fig11a")
	share := first(b, r, "alien-ram:connShare")
	if share < 60 {
		b.Fatalf("alien conn-gene share %v%% — RAM genomes should be conn-dominated", share)
	}
	b.ReportMetric(share, "alien-conn-%")
}

func BenchmarkFig11b_NoCComparison(b *testing.B) {
	r := regenerate(b, "fig11b")
	red := r.Series["reduction"]
	if red[len(red)-1] <= red[0] {
		b.Fatalf("multicast reduction not growing with PEs: %v", red)
	}
	b.ReportMetric(red[len(red)-1], "read-reduction-x")
}

func BenchmarkFig11c_PESweep(b *testing.B) {
	r := regenerate(b, "fig11c")
	cyc := r.Series["eveCycles"]
	uj := r.Series["sramUJ"]
	if cyc[0] <= 2*cyc[len(cyc)-1] {
		b.Fatalf("EvE runtime not compute-bound at low PEs: %v", cyc)
	}
	if uj[0] <= uj[len(uj)-1] {
		b.Fatalf("SRAM energy not decreasing with PEs: %v", uj)
	}
	b.ReportMetric(cyc[0]/cyc[len(cyc)-1], "runtime-scaling-x")
}
