#!/bin/sh
# check.sh — the repository's local verification gate.
#
# Runs, in order: gofmt (fails on any unformatted file), go vet, a full
# build, the full test suite, the race detector over the packages that
# exercise concurrency (the evolve evaluation pool and study runner, the
# compiled-network kernel and its reuse cache, the hardware counter
# registry, fault injector included, the experiment harness's
# singleflight run cache + parallel scheduler, the persistent run
# store, the genesysd serving layer with its integration test, and the
# NEAT speciation kernel whose distance pass fans out over workers,
# and the NSGA-II sort whose determinism test runs concurrently), a
# server smoke that runs the real genesysd + genesysctl binaries end to
# end on an ephemeral port — including a multi-objective job whose
# Pareto-front stream must replay byte-identically from the shared run
# cache — a durability smoke that SIGKILLs a
# store-backed daemon and proves the restarted one replays the result
# from disk, a one-iteration smoke over the kernel and replay
# trajectory benchmarks (so a change that breaks the bench harness
# fails here, not in scripts/bench.sh), and a short fuzz smoke over the
# untrusted-input decoders (trace parser, NEAT checkpoint, store
# manifest).
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "unformatted files:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test"
go test ./...

echo "== go test -race (evolve, network, env, hw, experiments, serve, store, cluster, neat, gene, moea)"
# env is in the race set since the batch engine: BatchEnv lane state is
# advanced by evaluation workers whose batch tests (network batch
# differential, env lockstep, evolve batch-vs-serial) all run here.
# store is in it since the persistent run store: commits, hits, GC, and
# quarantine all cross the scheduler's worker pool. cluster is in it
# since fleet mode: membership heartbeats, ring rebuilds, and the
# sharded island session protocol are all cross-goroutine. neat and
# gene are in it since the speciation kernel: the parallel distance
# pass fans CompatDistance over worker goroutines reading shared
# genomes, and the kernel differential test forces multi-worker fan-out
# even on a single-core host. moea is in it since NSGA-II: its
# determinism test runs the sort from concurrent goroutines to prove
# byte-identical fronts at any parallelism.
go test -race ./internal/evolve/... ./internal/network/... ./internal/env/... \
    ./internal/hw/... ./internal/experiments/... ./internal/serve/... \
    ./internal/store/... ./internal/cluster/... ./internal/neat/... \
    ./internal/gene/... ./internal/moea/...

echo "== genesysd smoke (real binaries, ephemeral port)"
smokedir=$(mktemp -d)
go build -o "$smokedir/genesysd" ./cmd/genesysd
go build -o "$smokedir/genesysctl" ./cmd/genesysctl
"$smokedir/genesysd" -addr 127.0.0.1:0 -addr-file "$smokedir/addr" &
daemon=$!
for _ in $(seq 1 100); do
    [ -s "$smokedir/addr" ] && break
    sleep 0.1
done
addr="http://$(cat "$smokedir/addr")"
# A tiny CartPole job end to end: the watch output must carry SSE
# generation records and a terminal done state.
watch_out=$("$smokedir/genesysctl" -addr "$addr" submit \
    -workload cartpole -pop 24 -generations 3 -watch)
echo "$watch_out"
echo "$watch_out" | grep -q "gen " || { echo "no SSE generation records" >&2; exit 1; }
echo "$watch_out" | grep -q ": done solved=" || { echo "job did not finish" >&2; exit 1; }
# /metrics must be valid JSON: genesysctl decodes the body into the
# counter-report type (dying on malformed JSON) before re-rendering it.
"$smokedir/genesysctl" -addr "$addr" metrics > "$smokedir/metrics.json"
grep -q '"genesysd"' "$smokedir/metrics.json" || { echo "metrics missing root" >&2; exit 1; }
# The per-phase generation accounting must be present and nonzero after
# a computed job: the local executor mounts its "phases" node into the
# tree and every Step charges evaluate/speciate/reproduce wall-clock.
for phase in evaluate_ns speciate_ns reproduce_ns; do
    grep -q "\"$phase\": [1-9]" "$smokedir/metrics.json" \
        || { echo "metrics missing nonzero $phase" >&2; exit 1; }
done
# A multi-objective (NSGA-II) job end to end: the watch stream must
# carry Pareto-front records after the history, and an identical
# resubmission must replay the exact same stream from the shared run
# cache — byte-identical modulo the job ids.
p1=$("$smokedir/genesysctl" -addr "$addr" submit \
    -workload cartpole -pop 24 -generations 3 -seed 888 \
    -objectives fitness+genes+energy -watch)
echo "$p1" | tail -4
echo "$p1" | grep -q "front point" || { echo "no Pareto-front records" >&2; exit 1; }
echo "$p1" | grep -q ": done solved=" || { echo "pareto job did not finish" >&2; exit 1; }
p2=$("$smokedir/genesysctl" -addr "$addr" submit \
    -workload cartpole -pop 24 -generations 3 -seed 888 \
    -objectives fitness+genes+energy -watch)
strip_ids() { grep -v '^submitted ' | sed 's/job-[0-9]*//g'; }
[ "$(echo "$p1" | strip_ids)" = "$(echo "$p2" | strip_ids)" ] \
    || { echo "pareto replay not byte-identical to the live stream" >&2; exit 1; }
# SIGTERM must drain cleanly.
kill -TERM "$daemon"
wait "$daemon" || { echo "genesysd exited non-zero on SIGTERM" >&2; exit 1; }

echo "== store durability smoke (kill -9 the daemon, restart, replay from disk)"
# Life 1: a store-backed daemon computes one job, then dies hard —
# SIGKILL, no drain, no goodbye. Life 2 over the same -store-dir must
# serve the identical resubmission from disk (stored=true, one
# store_hit) without re-running the evolution.
"$smokedir/genesysd" -addr 127.0.0.1:0 -addr-file "$smokedir/addr2" \
    -store-dir "$smokedir/store" -checkpoint-dir "$smokedir/ckpt" &
daemon=$!
for _ in $(seq 1 100); do
    [ -s "$smokedir/addr2" ] && break
    sleep 0.1
done
addr="http://$(cat "$smokedir/addr2")"
out1=$("$smokedir/genesysctl" -addr "$addr" submit \
    -workload cartpole -pop 24 -generations 3 -seed 777 -watch)
echo "$out1" | grep -q "stored=false" || { echo "first life claims a store hit" >&2; exit 1; }
kill -9 "$daemon"
wait "$daemon" 2>/dev/null || true
"$smokedir/genesysd" -addr 127.0.0.1:0 -addr-file "$smokedir/addr3" \
    -store-dir "$smokedir/store" -checkpoint-dir "$smokedir/ckpt" &
daemon=$!
for _ in $(seq 1 100); do
    [ -s "$smokedir/addr3" ] && break
    sleep 0.1
done
addr="http://$(cat "$smokedir/addr3")"
out2=$("$smokedir/genesysctl" -addr "$addr" submit \
    -workload cartpole -pop 24 -generations 3 -seed 777 -watch)
echo "$out2"
echo "$out2" | grep -q "stored=true" || { echo "restart did not replay from the store" >&2; exit 1; }
"$smokedir/genesysctl" -addr "$addr" metrics | grep -q '"store_hits": 1' \
    || { echo "metrics missing the store hit" >&2; exit 1; }
kill -TERM "$daemon"
wait "$daemon" || { echo "genesysd exited non-zero on SIGTERM" >&2; exit 1; }

echo "== cluster fleet smoke (coordinator + 2 workers, kill -9 one mid-job)"
# A real 3-process fleet over loopback: the coordinator admits, two
# workers execute against a shared checkpoint directory. One worker is
# SIGKILLed while it runs the job; the coordinator must mark it dead,
# re-dispatch, and the survivor must resume from the orphaned
# checkpoint — the watch stream ends done with resumed=true.
fleetckpt="$smokedir/fleet-ckpt"
"$smokedir/genesysd" -coordinator -addr 127.0.0.1:0 -addr-file "$smokedir/coord-addr" \
    -heartbeat-every 200ms -heartbeat-timeout 300ms -fail-after 2 &
coord=$!
for _ in $(seq 1 100); do
    [ -s "$smokedir/coord-addr" ] && break
    sleep 0.1
done
coord_addr="http://$(cat "$smokedir/coord-addr")"
"$smokedir/genesysd" -worker -join "$coord_addr" -addr 127.0.0.1:0 \
    -addr-file "$smokedir/w1-addr" -checkpoint-dir "$fleetckpt" -checkpoint-every 1 &
w1=$!
"$smokedir/genesysd" -worker -join "$coord_addr" -addr 127.0.0.1:0 \
    -addr-file "$smokedir/w2-addr" -checkpoint-dir "$fleetckpt" -checkpoint-every 1 &
w2=$!
for _ in $(seq 1 150); do
    alive=$("$smokedir/genesysctl" -addr "$coord_addr" cluster | grep -c " true " || true)
    [ "$alive" -ge 2 ] && break
    sleep 0.1
done
[ "$alive" -ge 2 ] || { echo "workers never joined the fleet" >&2; exit 1; }
w1_addr="http://$(cat "$smokedir/w1-addr")"
w2_addr="http://$(cat "$smokedir/w2-addr")"
# A slow job (the RAM workload, generous generation budget) so the
# victim is reliably mid-run when killed.
"$smokedir/genesysctl" -addr "$coord_addr" submit \
    -workload alien-ram -pop 30 -generations 40 -seed 4242 -watch \
    > "$smokedir/fleet-watch" 2>&1 &
watcher=$!
# Find the worker actually running it, wait for its first *completed*
# checkpoint (a rename-committed .ckpt — a .ckpt.tmp still staging
# would be torn by the kill and resume nothing), then kill -9.
victim=""
for _ in $(seq 1 200); do
    if "$smokedir/genesysctl" -addr "$w1_addr" list | grep -q running; then victim=$w1; break; fi
    if "$smokedir/genesysctl" -addr "$w2_addr" list | grep -q running; then victim=$w2; break; fi
    sleep 0.1
done
[ -n "$victim" ] || { echo "no worker picked the job up" >&2; exit 1; }
has_ckpt() { find "$fleetckpt" -name '*.ckpt' 2>/dev/null | grep -q .; }
for _ in $(seq 1 200); do
    has_ckpt && break
    sleep 0.1
done
has_ckpt || { echo "no checkpoint before kill" >&2; exit 1; }
kill -9 "$victim"
wait "$victim" 2>/dev/null || true
wait "$watcher" || { echo "fleet watch exited non-zero" >&2; cat "$smokedir/fleet-watch" >&2; exit 1; }
tail -3 "$smokedir/fleet-watch"
grep -q ": done solved=" "$smokedir/fleet-watch" \
    || { echo "fleet job did not finish after worker kill" >&2; cat "$smokedir/fleet-watch" >&2; exit 1; }
grep -q "resumed=true" "$smokedir/fleet-watch" \
    || { echo "failover did not resume from the orphaned checkpoint" >&2; cat "$smokedir/fleet-watch" >&2; exit 1; }
"$smokedir/genesysctl" -addr "$coord_addr" metrics | grep -q '"redispatched": ' \
    || { echo "metrics missing the cluster redispatch counter" >&2; exit 1; }
kill -TERM "$coord" 2>/dev/null || true
for p in "$w1" "$w2"; do kill -TERM "$p" 2>/dev/null || true; done
wait "$coord" 2>/dev/null || true
wait "$w1" 2>/dev/null || true
wait "$w2" 2>/dev/null || true
rm -rf "$smokedir"

echo "== bench smoke (kernel + batch + replay trajectory benches, 1 iteration)"
# The NetworkFeed/EvaluateGeneration patterns are prefixes, so the
# batch-engine variants (BenchmarkNetworkFeedBatch,
# BenchmarkEvaluateGenerationBatch/Scalar) smoke here too.
go test -run=NONE -bench='BenchmarkNetworkCompile|BenchmarkNetworkFeed' \
    -benchtime=1x ./internal/network/
go test -run=NONE -bench='BenchmarkSpeciate$|BenchmarkEpoch$' \
    -benchtime=1x ./internal/neat/
go test -run=NONE -bench='BenchmarkEvaluateGeneration' \
    -benchtime=1x ./internal/evolve/
go test -run=NONE -bench='BenchmarkSoCRunGeneration' \
    -benchtime=1x ./internal/hw/soc/
go test -run=NONE -bench='BenchmarkEvEReplay' \
    -benchtime=1x ./internal/hw/eve/
go test -run=NONE -bench='BenchmarkServeThroughput' \
    -benchtime=1x ./internal/serve/
go test -run=NONE -bench='BenchmarkStoreHitThroughput' \
    -benchtime=1x ./internal/store/
go test -run=NONE -bench='BenchmarkClusterThroughput' \
    -benchtime=1x ./internal/serve/
go test -run=NONE -bench='BenchmarkNonDominatedSort' \
    -benchtime=1x ./internal/moea/

echo "== fuzz smoke (trace, neat checkpoint, store manifest)"
# -fuzzminimizetime is bounded in execs: the default 60s-per-input
# minimization budget would eat the whole smoke window on the ~5 KB
# checkpoint corpus entries.
go test -run=NONE -fuzz=FuzzParse -fuzztime=5s -fuzzminimizetime=50x ./internal/trace/
go test -run=NONE -fuzz=FuzzRestore -fuzztime=5s -fuzzminimizetime=50x ./internal/neat/
go test -run=NONE -fuzz=FuzzManifest -fuzztime=5s -fuzzminimizetime=50x ./internal/store/

echo "ok"
