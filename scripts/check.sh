#!/bin/sh
# check.sh — the repository's local verification gate.
#
# Runs, in order: gofmt (fails on any unformatted file), go vet, a full
# build, the full test suite, the race detector over the packages that
# exercise concurrency (the evolve evaluation pool and study runner, the
# compiled-network kernel and its reuse cache, the hardware counter
# registry, fault injector included, and the experiment harness's
# singleflight run cache + parallel scheduler), a one-iteration smoke
# over the kernel and replay trajectory benchmarks (so a change that
# breaks the bench harness fails here, not in scripts/bench.sh), and a
# short fuzz smoke over the two untrusted-input decoders (trace parser,
# NEAT checkpoint).
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "unformatted files:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test"
go test ./...

echo "== go test -race (evolve, network, hw, experiments)"
go test -race ./internal/evolve/... ./internal/network/... ./internal/hw/... \
    ./internal/experiments/...

echo "== bench smoke (kernel + replay trajectory benches, 1 iteration)"
go test -run=NONE -bench='BenchmarkNetworkCompile|BenchmarkNetworkFeed' \
    -benchtime=1x ./internal/network/
go test -run=NONE -bench='BenchmarkEvaluateGeneration' \
    -benchtime=1x ./internal/evolve/
go test -run=NONE -bench='BenchmarkSoCRunGeneration' \
    -benchtime=1x ./internal/hw/soc/
go test -run=NONE -bench='BenchmarkEvEReplay' \
    -benchtime=1x ./internal/hw/eve/

echo "== fuzz smoke (trace, neat checkpoint)"
# -fuzzminimizetime is bounded in execs: the default 60s-per-input
# minimization budget would eat the whole smoke window on the ~5 KB
# checkpoint corpus entries.
go test -run=NONE -fuzz=FuzzParse -fuzztime=5s -fuzzminimizetime=50x ./internal/trace/
go test -run=NONE -fuzz=FuzzRestore -fuzztime=5s -fuzzminimizetime=50x ./internal/neat/

echo "ok"
