#!/bin/sh
# check.sh — the repository's local verification gate.
#
# Runs, in order: gofmt (fails on any unformatted file), go vet, a full
# build, the full test suite, the race detector over the packages that
# exercise concurrency (the evolve evaluation pool and study runner, the
# compiled-network kernel and its reuse cache, the hardware counter
# registry, fault injector included, the experiment harness's
# singleflight run cache + parallel scheduler, the persistent run
# store, and the genesysd serving layer with its integration test), a
# server smoke that runs the real genesysd + genesysctl binaries end to
# end on an ephemeral port, a durability smoke that SIGKILLs a
# store-backed daemon and proves the restarted one replays the result
# from disk, a one-iteration smoke over the kernel and replay
# trajectory benchmarks (so a change that breaks the bench harness
# fails here, not in scripts/bench.sh), and a short fuzz smoke over the
# untrusted-input decoders (trace parser, NEAT checkpoint, store
# manifest).
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "unformatted files:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test"
go test ./...

echo "== go test -race (evolve, network, env, hw, experiments, serve, store)"
# env is in the race set since the batch engine: BatchEnv lane state is
# advanced by evaluation workers whose batch tests (network batch
# differential, env lockstep, evolve batch-vs-serial) all run here.
# store is in it since the persistent run store: commits, hits, GC, and
# quarantine all cross the scheduler's worker pool.
go test -race ./internal/evolve/... ./internal/network/... ./internal/env/... \
    ./internal/hw/... ./internal/experiments/... ./internal/serve/... \
    ./internal/store/...

echo "== genesysd smoke (real binaries, ephemeral port)"
smokedir=$(mktemp -d)
go build -o "$smokedir/genesysd" ./cmd/genesysd
go build -o "$smokedir/genesysctl" ./cmd/genesysctl
"$smokedir/genesysd" -addr 127.0.0.1:0 -addr-file "$smokedir/addr" &
daemon=$!
for _ in $(seq 1 100); do
    [ -s "$smokedir/addr" ] && break
    sleep 0.1
done
addr="http://$(cat "$smokedir/addr")"
# A tiny CartPole job end to end: the watch output must carry SSE
# generation records and a terminal done state.
watch_out=$("$smokedir/genesysctl" -addr "$addr" submit \
    -workload cartpole -pop 24 -generations 3 -watch)
echo "$watch_out"
echo "$watch_out" | grep -q "gen " || { echo "no SSE generation records" >&2; exit 1; }
echo "$watch_out" | grep -q ": done solved=" || { echo "job did not finish" >&2; exit 1; }
# /metrics must be valid JSON: genesysctl decodes the body into the
# counter-report type (dying on malformed JSON) before re-rendering it.
"$smokedir/genesysctl" -addr "$addr" metrics > "$smokedir/metrics.json"
grep -q '"genesysd"' "$smokedir/metrics.json" || { echo "metrics missing root" >&2; exit 1; }
# SIGTERM must drain cleanly.
kill -TERM "$daemon"
wait "$daemon" || { echo "genesysd exited non-zero on SIGTERM" >&2; exit 1; }

echo "== store durability smoke (kill -9 the daemon, restart, replay from disk)"
# Life 1: a store-backed daemon computes one job, then dies hard —
# SIGKILL, no drain, no goodbye. Life 2 over the same -store-dir must
# serve the identical resubmission from disk (stored=true, one
# store_hit) without re-running the evolution.
"$smokedir/genesysd" -addr 127.0.0.1:0 -addr-file "$smokedir/addr2" \
    -store-dir "$smokedir/store" -checkpoint-dir "$smokedir/ckpt" &
daemon=$!
for _ in $(seq 1 100); do
    [ -s "$smokedir/addr2" ] && break
    sleep 0.1
done
addr="http://$(cat "$smokedir/addr2")"
out1=$("$smokedir/genesysctl" -addr "$addr" submit \
    -workload cartpole -pop 24 -generations 3 -seed 777 -watch)
echo "$out1" | grep -q "stored=false" || { echo "first life claims a store hit" >&2; exit 1; }
kill -9 "$daemon"
wait "$daemon" 2>/dev/null || true
"$smokedir/genesysd" -addr 127.0.0.1:0 -addr-file "$smokedir/addr3" \
    -store-dir "$smokedir/store" -checkpoint-dir "$smokedir/ckpt" &
daemon=$!
for _ in $(seq 1 100); do
    [ -s "$smokedir/addr3" ] && break
    sleep 0.1
done
addr="http://$(cat "$smokedir/addr3")"
out2=$("$smokedir/genesysctl" -addr "$addr" submit \
    -workload cartpole -pop 24 -generations 3 -seed 777 -watch)
echo "$out2"
echo "$out2" | grep -q "stored=true" || { echo "restart did not replay from the store" >&2; exit 1; }
"$smokedir/genesysctl" -addr "$addr" metrics | grep -q '"store_hits": 1' \
    || { echo "metrics missing the store hit" >&2; exit 1; }
kill -TERM "$daemon"
wait "$daemon" || { echo "genesysd exited non-zero on SIGTERM" >&2; exit 1; }
rm -rf "$smokedir"

echo "== bench smoke (kernel + batch + replay trajectory benches, 1 iteration)"
# The NetworkFeed/EvaluateGeneration patterns are prefixes, so the
# batch-engine variants (BenchmarkNetworkFeedBatch,
# BenchmarkEvaluateGenerationBatch/Scalar) smoke here too.
go test -run=NONE -bench='BenchmarkNetworkCompile|BenchmarkNetworkFeed' \
    -benchtime=1x ./internal/network/
go test -run=NONE -bench='BenchmarkEvaluateGeneration' \
    -benchtime=1x ./internal/evolve/
go test -run=NONE -bench='BenchmarkSoCRunGeneration' \
    -benchtime=1x ./internal/hw/soc/
go test -run=NONE -bench='BenchmarkEvEReplay' \
    -benchtime=1x ./internal/hw/eve/
go test -run=NONE -bench='BenchmarkServeThroughput' \
    -benchtime=1x ./internal/serve/
go test -run=NONE -bench='BenchmarkStoreHitThroughput' \
    -benchtime=1x ./internal/store/

echo "== fuzz smoke (trace, neat checkpoint, store manifest)"
# -fuzzminimizetime is bounded in execs: the default 60s-per-input
# minimization budget would eat the whole smoke window on the ~5 KB
# checkpoint corpus entries.
go test -run=NONE -fuzz=FuzzParse -fuzztime=5s -fuzzminimizetime=50x ./internal/trace/
go test -run=NONE -fuzz=FuzzRestore -fuzztime=5s -fuzzminimizetime=50x ./internal/neat/
go test -run=NONE -fuzz=FuzzManifest -fuzztime=5s -fuzzminimizetime=50x ./internal/store/

echo "ok"
