#!/bin/sh
# check.sh — the repository's local verification gate.
#
# Runs, in order: gofmt (fails on any unformatted file), go vet, a full
# build, the full test suite, and the race detector over the packages
# that exercise concurrency (the evolve study pool and the hardware
# counter registry).
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "unformatted files:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test"
go test ./...

echo "== go test -race (evolve, hw)"
go test -race ./internal/evolve/ ./internal/hw/...

echo "ok"
