#!/bin/sh
# bench.sh — the repository's perf-trajectory harness.
#
# Runs the compiled-kernel microbenches (compile, feed, full-generation
# evaluation) and, unless BENCH_QUICK=1, the root figure-regeneration
# benches, then renders everything into a machine-readable trajectory
# record via cmd/benchjson:
#
#	scripts/bench.sh                 # full run, writes BENCH_PR3.json
#	BENCH_QUICK=1 scripts/bench.sh   # kernel microbenches only
#
# The JSON carries ns/op, B/op, allocs/op and custom figure metrics for
# every benchmark, the pinned pre-PR baselines, and headline speedup
# ratios — the numbers future perf PRs are judged against.
set -eu

cd "$(dirname "$0")/.."

out=${BENCH_OUT:-BENCH_PR3.json}
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

echo "== kernel microbenches"
go test -run=NONE -bench='BenchmarkNetworkCompile|BenchmarkNetworkFeed' \
    -benchmem -count=3 -benchtime=2s ./internal/network/ | tee -a "$tmp"
go test -run=NONE -bench='BenchmarkEvaluateGeneration' \
    -benchmem -count=5 -benchtime=3s ./internal/evolve/ | tee -a "$tmp"

if [ "${BENCH_QUICK:-0}" != "1" ]; then
    echo "== figure benches (also regenerates results/)"
    go test -run=NONE -bench=. -benchmem -benchtime=1x -timeout=60m . | tee -a "$tmp"
fi

go run ./cmd/benchjson < "$tmp" > "$out"
echo "wrote $out"
