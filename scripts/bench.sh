#!/bin/sh
# bench.sh — the repository's perf-trajectory harness.
#
# Runs the compiled-kernel microbenches (compile, feed, full-generation
# evaluation — the NetworkFeed/EvaluateGeneration patterns also match
# their Batch/Scalar variants, so the tensorized engine and the scalar
# reference are recorded side by side), the reproduction-kernel benches
# (cold speciation pass, full epoch, single compatibility distance at
# RAM scale), the replay-layer benches (one SoC generation, one EvE
# trace replay), the serving-layer throughput bench (jobs/sec through a
# real genesysd over loopback HTTP, serial vs parallel worker pool),
# the persistent-store hit bench (bytes/sec through a verified
# Get — the disk-replay fast path), the cluster throughput bench (a
# coordinator dispatching over loopback HTTP to a 1-worker vs 2-worker
# fleet — the ratio is the cluster-scaling headline), the NSGA-II
# non-dominated-sort benches (ENS-SS kernel vs the retained Deb-2002
# reference on the same population — the ratio is the multi-objective
# headline), and, unless BENCH_QUICK=1, the full-suite harness bench
# plus the root figure-regeneration benches, then renders everything
# into a machine-readable trajectory record via cmd/benchjson:
#
#	scripts/bench.sh                 # full run, writes BENCH_PR10.json
#	BENCH_QUICK=1 scripts/bench.sh   # kernel + replay + serve + store + cluster + moea microbenches only
#
# The JSON carries ns/op, B/op, allocs/op and custom figure metrics for
# every benchmark, the pinned pre-PR baselines, and headline speedup
# ratios — the numbers future perf PRs are judged against.
set -eu

cd "$(dirname "$0")/.."

out=${BENCH_OUT:-BENCH_PR10.json}
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

echo "== kernel microbenches"
go test -run=NONE -bench='BenchmarkNetworkCompile|BenchmarkNetworkFeed' \
    -benchmem -count=3 -benchtime=2s ./internal/network/ | tee -a "$tmp"
go test -run=NONE -bench='BenchmarkEvaluateGeneration' \
    -benchmem -count=5 -benchtime=3s ./internal/evolve/ | tee -a "$tmp"

echo "== reproduction-kernel benches (speciation, full epoch, distance)"
go test -run=NONE -bench='BenchmarkSpeciate$|BenchmarkEpoch$|BenchmarkCompatDistanceRAMScale' \
    -benchmem -count=3 -benchtime=3x ./internal/neat/ | tee -a "$tmp"

echo "== replay benches"
go test -run=NONE -bench='BenchmarkSoCRunGeneration' \
    -benchmem -count=3 -benchtime=1s ./internal/hw/soc/ | tee -a "$tmp"
go test -run=NONE -bench='BenchmarkEvEReplay' \
    -benchmem -count=3 -benchtime=1s ./internal/hw/eve/ | tee -a "$tmp"

echo "== serve throughput bench (daemon jobs/sec, serial vs parallel pool)"
go test -run=NONE -bench='BenchmarkServeThroughput' \
    -benchmem -count=2 -benchtime=1s ./internal/serve/ | tee -a "$tmp"

echo "== store hit bench (verified disk replay, bytes/sec)"
go test -run=NONE -bench='BenchmarkStoreHitThroughput' \
    -benchmem -count=3 -benchtime=1s ./internal/store/ | tee -a "$tmp"

echo "== cluster throughput bench (coordinator + fleet, 1 vs 2 workers)"
go test -run=NONE -bench='BenchmarkClusterThroughput' \
    -benchmem -count=2 -benchtime=1s ./internal/serve/ | tee -a "$tmp"

echo "== NSGA-II non-dominated-sort benches (ENS-SS kernel vs Deb-2002 reference)"
go test -run=NONE -bench='BenchmarkNonDominatedSort' \
    -benchmem -count=3 -benchtime=2s ./internal/moea/ | tee -a "$tmp"

if [ "${BENCH_QUICK:-0}" != "1" ]; then
    echo "== experiment-suite bench (full harness, cold cache per iteration)"
    go test -run=NONE -bench='BenchmarkExperimentSuite$' \
        -benchtime=1x -count=2 -timeout=60m ./internal/experiments/ | tee -a "$tmp"
    echo "== figure benches (also regenerates results/)"
    go test -run=NONE -bench=. -benchmem -benchtime=1x -timeout=60m . | tee -a "$tmp"
fi

go run ./cmd/benchjson < "$tmp" > "$out"
echo "wrote $out"
