// Command characterize reproduces the Section III characterization of
// a single workload: per-generation fitness, gene growth, reproduction
// op counts, parent reuse and memory footprint (the raw data behind
// Fig. 4 and Fig. 5), and optionally dumps the reproduction trace in
// the paper's line format for the hardware models.
//
// Usage:
//
//	characterize -workload lunarlander -generations 60 -trace out.trace
//	characterize -workload cartpole -runs 8 -records records.json
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/evolve"
	"repro/internal/experiments"
	"repro/internal/hw/hwsim"
	"repro/internal/neat"
	"repro/internal/serve/signalctx"
	"repro/internal/stats"
	"repro/internal/trace"
)

// writeRecords dumps the structured per-generation record log as JSON.
func writeRecords(log *hwsim.Log, path string) {
	data, err := log.JSON()
	if err != nil {
		fmt.Fprintln(os.Stderr, "characterize:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "characterize:", err)
		os.Exit(1)
	}
	fmt.Printf("records: %d generation records written to %s\n", log.Len(), path)
}

func main() {
	var (
		workload    = flag.String("workload", "cartpole", "task: "+strings.Join(evolve.WorkloadNames(), ", "))
		generations = flag.Int("generations", 50, "generation budget")
		pop         = flag.Int("pop", 150, "population size")
		seed        = flag.Uint64("seed", 42, "run seed")
		traceOut    = flag.String("trace", "", "write the reproduction trace to this file")
		runs        = flag.Int("runs", 1, "independent runs; >1 prints the convergence study instead of per-generation rows")
		recordsOut  = flag.String("records", "", "write per-generation counter records to this file as JSON")
		resilience  = flag.Bool("resilience", false, "run the fault-rate resilience sweep for the workload instead of the characterization")
		ckptDir     = flag.String("checkpoint-dir", "", "directory for per-run population checkpoints; an interrupted study resumes from them")
		ckptEvery   = flag.Int("checkpoint-every", 5, "checkpoint interval in generations (with -checkpoint-dir)")
	)
	flag.Parse()

	// Ctrl-C or SIGTERM cancels the study at the next generation
	// boundary; the partial results, records and checkpoints below
	// still flush.
	ctx, stop := signalctx.Notify(context.Background())
	defer stop()

	cfg := neat.DefaultConfig(1, 1)
	cfg.PopulationSize = *pop
	log := &hwsim.Log{}

	if *resilience {
		res, err := experiments.ResilienceFor(*workload, experiments.Options{
			Seed:           *seed,
			MaxGenerations: *generations,
			Population:     *pop,
			Ctx:            ctx,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "characterize:", err)
			os.Exit(1)
		}
		if err := res.Render(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "characterize:", err)
			os.Exit(1)
		}
		return
	}

	if *runs > 1 {
		study, err := evolve.RunStudyContext(ctx, *workload, cfg, *runs, *generations, *seed,
			evolve.StudyOptions{Sink: log, CheckpointDir: *ckptDir, CheckpointEvery: *ckptEvery})
		if err != nil && !errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "characterize:", err)
			os.Exit(1)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "characterize: interrupted; partial study follows (resume with the same -checkpoint-dir)")
		}
		fmt.Printf("%s: %d runs × up to %d generations (pop %d)\n",
			*workload, *runs, *generations, *pop)
		fmt.Printf("solve rate:            %.0f%%\n", study.SolveRate()*100)
		fmt.Printf("generations to solve:  %s\n", study.GenerationsToSolve())
		fmt.Printf("ops/generation:        %s\n", stats.Summarize(study.OpsPerGeneration()))
		fmt.Printf("footprint bytes:       %s\n", stats.Summarize(study.FootprintsPerGeneration()))
		fmt.Println("\nmean normalized best fitness by generation:")
		fmt.Print(stats.Chart(study.MeanNormMaxByGeneration(), 60, 10))
		if *recordsOut != "" {
			writeRecords(log, *recordsOut)
		}
		return
	}
	r, err := evolve.NewRunner(*workload, cfg, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "characterize:", err)
		os.Exit(1)
	}
	r.Sink = log
	tr := &trace.Trace{}
	r.SetRecorder(tr)

	fmt.Printf("%-4s %-9s %-9s %-8s %-8s %-9s %-9s %-7s %-9s\n",
		"gen", "max-fit", "mean-fit", "species", "genes", "xover", "mutation", "reuse", "foot-KB")
	var ops, reuse, foot []float64
	for g := 0; g < *generations; g++ {
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "characterize: interrupted; flushing partial results")
			break
		}
		st, err := r.Step(ctx)
		if err != nil {
			fmt.Fprintln(os.Stderr, "characterize:", err)
			os.Exit(1)
		}
		fmt.Printf("%-4d %-9.2f %-9.2f %-8d %-8d %-9d %-9d %-7d %-9.1f\n",
			st.Generation, st.MaxFitness, st.MeanFitness, st.NumSpecies,
			st.TotalGenes, st.CrossoverOps, st.MutationOps,
			st.FittestParentReuse, float64(st.FootprintBytes)/1024)
		ops = append(ops, float64(st.CrossoverOps+st.MutationOps))
		reuse = append(reuse, float64(st.FittestParentReuse))
		foot = append(foot, float64(st.FootprintBytes))
		if st.Solved {
			fmt.Printf("solved at generation %d\n", st.Generation)
			break
		}
	}

	fmt.Printf("\nops/generation:     %s\n", stats.Summarize(ops))
	fmt.Printf("fittest reuse:      %s\n", stats.Summarize(reuse))
	fmt.Printf("footprint bytes:    %s\n", stats.Summarize(foot))

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "characterize:", err)
			os.Exit(1)
		}
		defer f.Close()
		if _, err := tr.WriteTo(f); err != nil {
			fmt.Fprintln(os.Stderr, "characterize:", err)
			os.Exit(1)
		}
		fmt.Printf("trace: %d generations written to %s\n", len(tr.Generations), *traceOut)
	}
	if *recordsOut != "" {
		writeRecords(log, *recordsOut)
	}
}
