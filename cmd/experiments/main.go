// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -run fig9a
//	experiments -run fig11b,fig11c
//	experiments -run all -pop 150 -ram-pop 150
//	experiments -run all -j 1          # fully serial harness
//
// Independent experiments run concurrently (capped by -j, default
// NumCPU) over a shared evolution-run cache, so each unique run
// evolves once per invocation; results stream out in id order and are
// byte-identical at every -j. Output is the fixed-width text form of
// each figure's rows/series; EXPERIMENTS.md maps each to the paper's
// plot.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro/internal/experiments"
	"repro/internal/serve/signalctx"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list experiment ids")
		run     = flag.String("run", "all", "comma-separated experiment ids, or 'all'")
		jobs    = flag.Int("j", runtime.NumCPU(), "max concurrent experiments/replays (1 = serial)")
		seed    = flag.Uint64("seed", 42, "base seed")
		runs    = flag.Int("runs", 3, "runs per workload for distribution figures")
		gens    = flag.Int("generations", 30, "generation budget (control workloads)")
		pop     = flag.Int("pop", 64, "population (control workloads; paper: 150)")
		ramPop  = flag.Int("ram-pop", 32, "population for 128-byte RAM workloads")
		ramGens = flag.Int("ram-generations", 6, "generation budget for RAM workloads")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.IDs(), "\n"))
		return
	}

	ids := experiments.IDs()
	if *run != "all" {
		ids = strings.Split(*run, ",")
		for _, id := range ids {
			if !experiments.Has(id) {
				fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (have %s)\n",
					id, strings.Join(experiments.IDs(), ", "))
				os.Exit(2)
			}
		}
	}

	// Ctrl-C or SIGTERM cancels the in-flight experiments; completed
	// experiments have already been rendered.
	ctx, stop := signalctx.Notify(context.Background())
	defer stop()

	opt := experiments.Options{
		Seed:           *seed,
		Runs:           *runs,
		MaxGenerations: *gens,
		Population:     *pop,
		RAMPopulation:  *ramPop,
		RAMGenerations: *ramGens,
		Parallelism:    *jobs,
		Ctx:            ctx,
	}

	// RunAll delivers outcomes in id order on this goroutine, so output
	// never interleaves no matter how the experiments are scheduled.
	failed := false
	experiments.RunAll(ids, opt, func(o experiments.Outcome) {
		if o.Err != nil {
			if errors.Is(o.Err, context.Canceled) {
				fmt.Fprintf(os.Stderr, "experiments: %s: interrupted\n", o.ID)
			} else {
				fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", o.ID, o.Err)
			}
			failed = true
			return
		}
		if err := o.Res.Render(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", o.ID, err)
			failed = true
		}
	})
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "experiments: interrupted")
		os.Exit(1)
	}
	if failed {
		os.Exit(1)
	}
}
