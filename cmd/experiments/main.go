// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -run fig9a
//	experiments -run all -pop 150 -ram-pop 150
//
// Output is the fixed-width text form of each figure's rows/series;
// EXPERIMENTS.md maps each to the paper's plot.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/experiments"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list experiment ids")
		run     = flag.String("run", "all", "experiment id or 'all'")
		seed    = flag.Uint64("seed", 42, "base seed")
		runs    = flag.Int("runs", 3, "runs per workload for distribution figures")
		gens    = flag.Int("generations", 30, "generation budget (control workloads)")
		pop     = flag.Int("pop", 64, "population (control workloads; paper: 150)")
		ramPop  = flag.Int("ram-pop", 32, "population for 128-byte RAM workloads")
		ramGens = flag.Int("ram-generations", 6, "generation budget for RAM workloads")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.IDs(), "\n"))
		return
	}

	// Ctrl-C cancels the in-flight experiment; completed experiments
	// have already been rendered.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opt := experiments.Options{
		Seed:           *seed,
		Runs:           *runs,
		MaxGenerations: *gens,
		Population:     *pop,
		RAMPopulation:  *ramPop,
		RAMGenerations: *ramGens,
		Ctx:            ctx,
	}

	ids := []string{*run}
	if *run == "all" {
		ids = experiments.IDs()
	}
	failed := false
	for _, id := range ids {
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "experiments: interrupted")
			os.Exit(1)
		}
		res, err := experiments.Run(id, opt)
		if err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintf(os.Stderr, "experiments: %s: interrupted\n", id)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", id, err)
			failed = true
			continue
		}
		if err := res.Render(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", id, err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}
