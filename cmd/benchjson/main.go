// Command benchjson turns `go test -bench` output into the repository's
// machine-readable perf-trajectory record (BENCH_<pr>.json). It reads
// benchmark output on stdin and writes one JSON document on stdout:
// every benchmark's ns/op, B/op, allocs/op and custom metrics (best
// across -count repetitions), the recorded pre-change baseline for the
// tracked kernel benchmarks, and the headline improvement ratios.
//
//	go test -run=NONE -bench=. -benchmem ./... | benchjson > BENCH_PR3.json
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"repro/internal/serve/signalctx"
)

// Result is one benchmark's aggregated measurement.
type Result struct {
	Name    string             `json:"name"`
	Count   int                `json:"count"`
	Iters   int64              `json:"iters"`
	NsPerOp float64            `json:"ns_per_op"`
	BPerOp  float64            `json:"b_per_op,omitempty"`
	Allocs  float64            `json:"allocs_per_op,omitempty"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Baseline is a pinned pre-change measurement a headline compares
// against.
type Baseline struct {
	Commit  string  `json:"commit"`
	NsPerOp float64 `json:"ns_per_op"`
	BPerOp  float64 `json:"b_per_op"`
	Allocs  float64 `json:"allocs_per_op"`
}

// Host records the machine the benchmarks ran on — the context any
// cross-PR ratio comparison needs (a 1-CPU container's scaling numbers
// mean something different from a 32-core bare-metal run's).
type Host struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// Document is the emitted trajectory record.
type Document struct {
	Schema     string              `json:"schema"`
	Host       Host                `json:"host"`
	Benchmarks []*Result           `json:"benchmarks"`
	Baselines  map[string]Baseline `json:"baselines"`
	Headlines  map[string]float64  `json:"headlines"`
}

// baselines are the pinned pre-change numbers, measured on the same
// machine at the commit preceding each tracked change, with the same
// benchmark bodies.
//
// PR3 kernel benches (at a523566): population 64, 8 warm-up
// generations, parallelism 4 for EvaluateGeneration; the 8-input
// 64-pop evolved genome for the network microbenches.
//
// PR4 harness/replay benches (at 14eb020): BenchmarkExperimentSuite is
// the pre-cache serial harness — every registered experiment
// regenerated in id order with no run sharing — at the suiteOpt
// fidelity (seed 42, 1 run, 20 generations, pop 64, RAM pop 96, RAM
// generations 12), best of 3. The SoC/EvE replay bodies are unchanged
// by PR4 (only their callers were parallelized), so their baselines
// were measured with the PR4 benchmark bodies at the pre-change model
// code; their headline ratios are expected to hover near 1 and exist
// to catch replay-layer regressions in future PRs.
// PR5 serve bench (at cb021f3): the daemon did not exist pre-change,
// so the pinned number is the serial (j=1) end-to-end cost of the same
// jobs — the evolution kernel dominating per-job cost is unchanged by
// PR5, making serial throughput at HEAD the honest pre-change floor.
// Its ns headline is a regression tripwire for serving-layer overhead;
// the parallel story is the separate ServeThroughput_parallel_speedup
// headline computed within one document.
//
// PR6 batch-engine benches (at 7603cf6, best-of-5 on the same host):
// the batch benchmarks did not exist pre-change, so each is pinned to
// the scalar path it replaces, re-measured at the pre-PR commit.
// BenchmarkNetworkFeedBatch reports ns per lane-inference, directly
// comparable to the scalar BenchmarkNetworkFeed per-inference cost;
// BenchmarkEvaluateGenerationBatch shares its exact workload (cartpole,
// pop 64, 8 warm-up generations, parallelism 4) with the pre-batch
// BenchmarkEvaluateGeneration. The separately recorded BENCH_PR5
// EvaluateGeneration value (benchPR5EvaluateGeneration below) is the
// acceptance denominator for the PR6 ≥2× target; the 7603cf6 pin is
// the stricter same-session number.
// PR9 reproduction-kernel benches (at b226e8f, best-of-3 on the same
// host): BenchmarkSpeciate and BenchmarkEpoch did not exist pre-change,
// so each pin re-measures the identical benchmark body (RAM-scale
// 128×18 population of 150, 8 diversification epochs, seed 3) against
// the pre-kernel speciation/reproduction code — per-gene binary-search
// distances, no memo, serial, full refresh recomputation.
// BenchmarkCompatDistanceRAMScale existed since PR1 but reported no
// allocations; its pin re-measures the pre-merge-join distance body.
var baselines = map[string]Baseline{
	"BenchmarkNetworkCompile":          {Commit: "a523566", NsPerOp: 10884, BPerOp: 8888, Allocs: 101},
	"BenchmarkNetworkFeed":             {Commit: "a523566", NsPerOp: 450.9, BPerOp: 280, Allocs: 6},
	"BenchmarkEvaluateGeneration":      {Commit: "a523566", NsPerOp: 1465537, BPerOp: 585224, Allocs: 29172},
	"BenchmarkExperimentSuite":         {Commit: "14eb020", NsPerOp: 27692578274},
	"BenchmarkSoCRunGeneration":        {Commit: "14eb020", NsPerOp: 17511, BPerOp: 10424, Allocs: 154},
	"BenchmarkEvEReplay":               {Commit: "14eb020", NsPerOp: 58341, BPerOp: 25648, Allocs: 214},
	"BenchmarkServeThroughput/j=1":     {Commit: "cb021f3", NsPerOp: 1183991, BPerOp: 1187224, Allocs: 1454},
	"BenchmarkNetworkFeedBatch":        {Commit: "7603cf6", NsPerOp: 178.8},
	"BenchmarkEvaluateGenerationBatch": {Commit: "7603cf6", NsPerOp: 508671, BPerOp: 7704, Allocs: 193},
	"BenchmarkSpeciate":                {Commit: "b226e8f", NsPerOp: 95690089, BPerOp: 4544, Allocs: 11},
	"BenchmarkEpoch":                   {Commit: "b226e8f", NsPerOp: 158203480, BPerOp: 34322372, Allocs: 14318},
	"BenchmarkCompatDistanceRAMScale":  {Commit: "b226e8f", NsPerOp: 305833},
}

// benchPR5EvaluateGeneration is the BenchmarkEvaluateGeneration value
// recorded in BENCH_PR5.json — the denominator the PR6 acceptance
// criterion ("≥2× over the BENCH_PR5 value") is defined against. It
// was measured under the PR5 bench protocol on this host; the 7603cf6
// baseline above re-measures the same commit in the PR6 session and is
// the lower (stricter) comparison point.
const benchPR5EvaluateGeneration = 636743.0

func main() {
	// Ctrl-C or SIGTERM stops reading stdin early and renders the
	// document from the benchmarks parsed so far, so an interrupted
	// bench.sh pipeline still leaves a valid (partial) record.
	ctx, stop := signalctx.Notify(context.Background())
	defer stop()

	byName := map[string]*Result{}
	var order []string
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "benchjson: interrupted; rendering partial document")
			break
		}
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			// Strip the GOMAXPROCS suffix (BenchmarkX-8).
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r, ok := byName[name]
		if !ok {
			r = &Result{Name: name}
			byName[name] = r
			order = append(order, name)
		}
		r.Count++
		// Remaining fields come in (value, unit) pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			unit := fields[i+1]
			switch unit {
			case "ns/op":
				if r.Count == 1 || v < r.NsPerOp {
					r.NsPerOp = v
					r.Iters = iters
				}
			case "B/op":
				if r.BPerOp == 0 || v < r.BPerOp {
					r.BPerOp = v
				}
			case "allocs/op":
				if r.Allocs == 0 || v < r.Allocs {
					r.Allocs = v
				}
			default:
				if r.Metrics == nil {
					r.Metrics = map[string]float64{}
				}
				r.Metrics[unit] = v
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(order) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	doc := Document{
		Schema: "genesys-bench/1",
		Host: Host{
			GoVersion:  runtime.Version(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			NumCPU:     runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
		},
		Baselines: baselines,
		Headlines: map[string]float64{},
	}
	for _, name := range order {
		doc.Benchmarks = append(doc.Benchmarks, byName[name])
	}
	for name, base := range baselines {
		r, ok := byName[name]
		if !ok || r.NsPerOp == 0 {
			continue
		}
		key := strings.TrimPrefix(name, "Benchmark")
		doc.Headlines[key+"_ns_speedup"] = round2(base.NsPerOp / r.NsPerOp)
		if r.Allocs > 0 {
			doc.Headlines[key+"_allocs_ratio"] = round2(base.Allocs / r.Allocs)
		} else if base.Allocs > 0 {
			// Zero allocations now: report the baseline count as the
			// ratio floor marker.
			doc.Headlines[key+"_allocs_ratio"] = base.Allocs
		}
	}

	// The PR6 acceptance headline: the tensorized engine against the
	// EvaluateGeneration value recorded in BENCH_PR5.json (same
	// workload; the batch bench is its successor).
	if batch, ok := byName["BenchmarkEvaluateGenerationBatch"]; ok && batch.NsPerOp > 0 {
		doc.Headlines["EvaluateGenerationBatch_vs_pr5_speedup"] =
			round2(benchPR5EvaluateGeneration / batch.NsPerOp)
	}

	// The serve scaling headline is computed within this document:
	// serial (j=1) vs the widest worker pool measured. > 1 means the
	// pool parallelized job throughput; on a single-core machine it
	// honestly reports the contention cost instead.
	if serial, ok := byName["BenchmarkServeThroughput/j=1"]; ok && serial.NsPerOp > 0 {
		widestJ := 1
		var widest *Result
		for name, r := range byName {
			rest, found := strings.CutPrefix(name, "BenchmarkServeThroughput/j=")
			if !found {
				continue
			}
			j, err := strconv.Atoi(rest)
			if err != nil || j <= widestJ {
				continue
			}
			widestJ, widest = j, r
		}
		if widest != nil && widest.NsPerOp > 0 {
			doc.Headlines["ServeThroughput_parallel_speedup"] = round2(serial.NsPerOp / widest.NsPerOp)
		}
	}

	// The PR10 NSGA-II headline, computed within this document: the
	// retained Deb-2002 reference sort against the ENS-SS kernel on the
	// identical population (same sizes, same objective vectors — the two
	// implementations are pinned byte-identical by the differential
	// tests, so the ratio isolates pure sorting cost).
	if ref, ok := byName["BenchmarkNonDominatedSortReference"]; ok && ref.NsPerOp > 0 {
		if kernel, ok := byName["BenchmarkNonDominatedSort"]; ok && kernel.NsPerOp > 0 {
			doc.Headlines["NonDominatedSort_ref_vs_kernel_speedup"] = round2(ref.NsPerOp / kernel.NsPerOp)
		}
	}

	// The PR8 cluster headline, computed within this document: fleet
	// throughput with the widest worker count measured against the
	// single-worker fleet (same coordinator, same dispatch path, so the
	// ratio isolates what adding workers buys). The acceptance target
	// (w=2 ≥ 1.6× w=1) applies on multi-core hosts; a 1-CPU host
	// honestly records its measured ratio — the fleet there shares one
	// core and the number reports dispatch pipelining, not scaling.
	if single, ok := byName["BenchmarkClusterThroughput/w=1"]; ok && single.NsPerOp > 0 {
		widestW := 1
		var widest *Result
		for name, r := range byName {
			rest, found := strings.CutPrefix(name, "BenchmarkClusterThroughput/w=")
			if !found {
				continue
			}
			w, err := strconv.Atoi(rest)
			if err != nil || w <= widestW {
				continue
			}
			widestW, widest = w, r
		}
		if widest != nil && widest.NsPerOp > 0 {
			doc.Headlines["ClusterThroughput_workers_speedup"] = round2(single.NsPerOp / widest.NsPerOp)
		}
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func round2(v float64) float64 {
	return float64(int64(v*100+0.5)) / 100
}
