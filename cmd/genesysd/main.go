// Command genesysd is the evolution-as-a-service daemon: it accepts
// evolution jobs over a JSON HTTP API, runs them on a bounded
// scheduler backed by the shared run cache (identical submissions
// execute one evolution), streams per-generation records to clients
// as Server-Sent Events, sheds load with 429 + Retry-After instead of
// degrading admitted jobs, and drains gracefully on SIGTERM/SIGINT —
// new work is refused, running jobs get a grace period to finish,
// stragglers are cancelled at a generation boundary with a checkpoint
// so a resubmission resumes where they stopped.
//
// Cluster mode distributes execution across a worker fleet while the
// client-facing surface stays identical: a coordinator
// (-coordinator) owns admission, the run store, and a consistent-hash
// ring over its workers; each worker (-worker -join URL) runs the
// same daemon plus the island session protocol and registers with the
// coordinator, which health-checks it and re-dispatches its jobs on
// death.
//
// Usage:
//
//	genesysd -addr 127.0.0.1:8177 -max-running 4 -queue 16
//	genesysd -addr 127.0.0.1:0 -addr-file /tmp/genesysd.addr -checkpoint-dir /tmp/ckpt
//	genesysd -addr 127.0.0.1:8177 -coordinator -store-dir /tmp/store
//	genesysd -addr 127.0.0.1:0 -worker -join http://127.0.0.1:8177 -checkpoint-dir /tmp/ckpt
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registered on DefaultServeMux, served only via -pprof
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/serve"
	"repro/internal/serve/signalctx"
	"repro/internal/store"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8177", "listen address (port 0 picks an ephemeral port)")
		addrFile   = flag.String("addr-file", "", "write the bound address to this file once listening (for scripts using port 0)")
		maxRunning = flag.Int("max-running", runtime.NumCPU(), "jobs executing concurrently (worker pool size)")
		queue      = flag.Int("queue", 16, "queued-job cap; submissions beyond it are shed with 429")
		perClient  = flag.Int("per-client", 0, "per-client queued+running cap (0 = unlimited)")
		evalPar    = flag.Int("eval-parallelism", 1, "per-job evaluation worker pool width")
		batchWidth = flag.Int("batch-width", 0, "per-job batch evaluation engine lane cap (0 = engine default; results are identical at every width)")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6060; empty = disabled)")
		ckptDir    = flag.String("checkpoint-dir", "", "directory for job checkpoints; interrupted jobs resume on resubmission")
		ckptEvery  = flag.Int("checkpoint-every", 5, "periodic checkpoint interval in generations (with -checkpoint-dir)")
		drainGrace = flag.Duration("drain-grace", 30*time.Second, "how long running jobs may finish after SIGTERM before being checkpointed and cancelled")

		storeDir      = flag.String("store-dir", "", "persistent run-store root; completed results survive restarts and replay without re-evolving")
		storeMaxBytes = flag.Int64("store-max-bytes", 0, "run-store size budget for GC, LRU eviction past it (0 = unbounded)")
		storeMaxAge   = flag.Duration("store-max-age", 0, "evict run-store artifacts older than this on GC (0 = no age limit)")
		ckptMaxAge    = flag.Duration("checkpoint-max-age", 24*time.Hour, "GC sweeps checkpoints older than this (0 = keep forever)")
		storeGCEvery  = flag.Duration("store-gc-every", 10*time.Minute, "periodic run-store GC interval (0 = on-demand only via POST /store/gc)")

		coordMode   = flag.Bool("coordinator", false, "run as cluster coordinator: dispatch admitted jobs across the joined worker fleet")
		workerMode  = flag.Bool("worker", false, "run as fleet worker: serve the island session protocol and register with -join")
		joinURL     = flag.String("join", "", "coordinator base URL a worker registers with (e.g. http://127.0.0.1:8177)")
		advertise   = flag.String("advertise", "", "base URL this worker advertises to the coordinator (default http://<bound-addr>)")
		workersList = flag.String("workers", "", "comma-separated worker base URLs the coordinator seeds its fleet with at boot")
		hbEvery     = flag.Duration("heartbeat-every", 2*time.Second, "coordinator health-check interval")
		hbTimeout   = flag.Duration("heartbeat-timeout", time.Second, "one health-check request's timeout")
		failAfter   = flag.Int("fail-after", 3, "consecutive failed heartbeats before a worker is marked dead")
	)
	flag.Parse()
	if *coordMode && *workerMode {
		fmt.Fprintln(os.Stderr, "genesysd: -coordinator and -worker are mutually exclusive")
		os.Exit(1)
	}
	if *workerMode && *joinURL == "" {
		fmt.Fprintln(os.Stderr, "genesysd: -worker requires -join <coordinator-url>")
		os.Exit(1)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "genesysd:", err)
		os.Exit(1)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "genesysd:", err)
			os.Exit(1)
		}
	}

	// The profiling endpoint lives on its own listener so the pprof
	// surface is never exposed on the API address by accident.
	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "genesysd: pprof:", err)
			os.Exit(1)
		}
		fmt.Printf("genesysd: pprof on http://%s/debug/pprof/\n", pln.Addr())
		go func() {
			if err := http.Serve(pln, nil); err != nil {
				fmt.Fprintln(os.Stderr, "genesysd: pprof:", err)
			}
		}()
	}

	// The checkpoint directory must exist before the first job tries to
	// write into it — store.Open creates it when a store is configured,
	// but a store-less worker (the common fleet shape) has only this.
	if *ckptDir != "" {
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "genesysd:", err)
			os.Exit(1)
		}
	}

	// The persistent run store survives daemon restarts: completed
	// results replay from disk without re-evolving, and interrupted
	// jobs are re-enqueued from their orphaned checkpoints on boot.
	var runStore *store.Store
	if *storeDir != "" {
		runStore, err = store.Open(store.Config{
			Root:             *storeDir,
			MaxBytes:         *storeMaxBytes,
			MaxAge:           *storeMaxAge,
			CheckpointDir:    *ckptDir,
			CheckpointMaxAge: *ckptMaxAge,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "genesysd: store:", err)
			os.Exit(1)
		}
	}

	cfg := serve.Config{
		MaxRunning:        *maxRunning,
		MaxQueue:          *queue,
		MaxPerClient:      *perClient,
		RunnerParallelism: *evalPar,
		RunnerBatchWidth:  *batchWidth,
		CheckpointDir:     *ckptDir,
		CheckpointEvery:   *ckptEvery,
		Store:             runStore,
	}

	// Cluster wiring. A worker suffixes its checkpoints with its member
	// id (derived from the advertised address) so a shared checkpoint
	// directory never sees interleaved writes; a coordinator swaps its
	// executor for the fleet dispatcher.
	advAddr := *advertise
	if advAddr == "" {
		advAddr = "http://" + bound
	}
	var members *cluster.Membership
	if *workerMode {
		cfg.WorkerID = cluster.MemberID(advAddr)
	}
	if *coordMode {
		// The dispatcher exists before the registry so membership changes
		// (join, death, revival) can trigger its rebalance pass: queued
		// jobs whose consistent-hash owner moved are re-routed to the new
		// owner; running jobs stay put.
		disp := &serve.Dispatcher{}
		members = cluster.NewMembership(cluster.MembershipConfig{
			HeartbeatEvery:   *hbEvery,
			HeartbeatTimeout: *hbTimeout,
			FailAfter:        *failAfter,
			OnChange:         disp.Rebalance,
		})
		disp.Members = members
		cfg.Executor = disp
	}

	sched := serve.NewScheduler(cfg)
	server := serve.NewServer(sched)
	if *coordMode {
		server.EnableCluster(members)
		for _, addr := range strings.Split(*workersList, ",") {
			if addr = strings.TrimSpace(addr); addr != "" {
				mem := members.Join(addr)
				fmt.Printf("genesysd: seeded worker %s (%s)\n", mem.ID, mem.Addr)
			}
		}
	}
	if *workerMode {
		server.EnableWorker(cluster.NewWorkerAPI())
	}
	srv := &http.Server{Handler: server}

	if runStore != nil {
		rep, requeued := sched.Recover()
		fmt.Printf("genesysd: store %s: %d verified, %d quarantined, %d tmp swept, %d checkpoints swept, %d interrupted (%d re-enqueued)\n",
			*storeDir, rep.Verified, rep.Quarantined, rep.TmpSwept, rep.CheckpointsSwept,
			len(rep.Interrupted), len(requeued))
		if *storeGCEvery > 0 {
			ticker := time.NewTicker(*storeGCEvery)
			defer ticker.Stop()
			go func() {
				for range ticker.C {
					runStore.GC()
				}
			}()
		}
	}

	// SIGTERM (container stop) and SIGINT share one drain path: stop
	// admitting, let running jobs finish or checkpoint, then exit.
	ctx, stop := signalctx.Notify(context.Background())
	defer stop()

	if *coordMode {
		go members.Run(ctx)
	}
	if *workerMode {
		// Register with the coordinator, retrying until it is reachable,
		// then re-join periodically — joins are idempotent, and the
		// periodic one re-registers this worker after a coordinator
		// restart wipes the membership registry.
		go func() {
			co := &serve.Client{Base: *joinURL, Retry: serve.RetryPolicy{MaxAttempts: 5}}
			for {
				if mem, err := co.ClusterJoin(ctx, advAddr); err == nil {
					fmt.Printf("genesysd: joined %s as %s (%s)\n", *joinURL, mem.ID, mem.Addr)
				} else if ctx.Err() != nil {
					return
				} else {
					fmt.Fprintln(os.Stderr, "genesysd:", err)
				}
				select {
				case <-ctx.Done():
					return
				case <-time.After(15 * time.Second):
				}
			}
		}()
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	mode := "standalone"
	if *coordMode {
		mode = "coordinator"
	} else if *workerMode {
		mode = "worker " + cluster.MemberID(advAddr)
	}
	fmt.Printf("genesysd: listening on %s (%s, workers %d, queue %d)\n", bound, mode, *maxRunning, *queue)

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "genesysd:", err)
			os.Exit(1)
		}
	case <-ctx.Done():
	}

	fmt.Fprintf(os.Stderr, "genesysd: draining (grace %s)\n", *drainGrace)
	sched.Drain(*drainGrace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		srv.Close()
	}
	fmt.Fprintln(os.Stderr, "genesysd: drained, exiting")
}
