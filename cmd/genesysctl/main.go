// Command genesysctl is the genesysd client: submit evolution jobs,
// follow their per-generation record streams, cancel them, and drive
// load-generation sweeps against a daemon.
//
// Usage:
//
//	genesysctl -addr http://127.0.0.1:8177 submit -workload cartpole -generations 30 -watch
//	genesysctl watch job-0001
//	genesysctl cancel job-0001
//	genesysctl checkpoint job-0001
//	genesysctl list
//	genesysctl metrics
//	genesysctl load -jobs 16 -concurrency 8 -workload cartpole -generations 5
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/hw/hwsim"
	"repro/internal/moea"
	"repro/internal/serve"
	"repro/internal/serve/signalctx"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: genesysctl [-addr URL] <command> [args]

commands:
  submit      -workload W -pop N -generations N -seed N [-islands N -migration-every N] [-objectives a+b+c] [-watch]
  watch       <job-id>
  cancel      <job-id>
  checkpoint  <job-id>
  status      <job-id>
  list
  metrics
  cluster     [join <worker-url>]
  load        -jobs N [-concurrency N] [-same-seed] [-no-watch] -workload W ...
`)
	os.Exit(2)
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "genesysctl:", err)
	os.Exit(1)
}

func printJSON(v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		die(err)
	}
	fmt.Println(string(data))
}

// watchJob follows one job's SSE stream, printing a line per
// generation (or per Pareto-front point, for records a multi-objective
// job appends after its history) and the terminal status.
func watchJob(ctx context.Context, c *serve.Client, id string) {
	final, err := c.Watch(ctx, id, func(r hwsim.Record) error {
		if strings.HasSuffix(r.Workload, "#front") {
			var vals []string
			for _, name := range r.Report.FloatNames() {
				if name == "crowding" {
					continue // rendered last, with the boundary sentinel handled
				}
				vals = append(vals, fmt.Sprintf("%s=%.2f", name, r.Report.Float(name)))
			}
			crowd := "crowding=boundary"
			if c := r.Report.Float("crowding"); c != moea.CrowdingMax {
				crowd = fmt.Sprintf("crowding=%.2f", c)
			}
			fmt.Printf("%s front point %2d  genome %d  %s  %s\n",
				id, r.Report.Int("point"), r.Report.Int("genome_id"), strings.Join(vals, "  "), crowd)
			return nil
		}
		fmt.Printf("%s gen %3d  max %8.2f  mean %8.2f  genes %6d\n",
			id, r.Generation,
			r.Report.Float("max_fitness"), r.Report.Float("mean_fitness"),
			r.Report.Int("total_genes"))
		return nil
	})
	if err != nil {
		die(err)
	}
	fmt.Printf("%s: %s solved=%v generations=%d best=%.2f stored=%v resumed=%v\n",
		final.ID, final.State, final.Solved, final.Generations, final.BestFitness, final.Stored, final.Resumed)
	if final.State == serve.StateFailed {
		os.Exit(1)
	}
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8177", "genesysd base URL")
	client := flag.String("client", "genesysctl", "client identity for the per-client cap")
	retries := flag.Int("retries", 4, "total request attempts on 429/transport errors (1 = no retry)")
	retryBase := flag.Duration("retry-base", 200*time.Millisecond, "first retry backoff; doubles per attempt, capped at 5s")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
	}
	c := &serve.Client{
		Base: *addr,
		Name: *client,
		Retry: serve.RetryPolicy{
			MaxAttempts: *retries,
			BaseDelay:   *retryBase,
		},
	}

	// Ctrl-C / SIGTERM abort in-flight requests and watches.
	ctx, stop := signalctx.Notify(context.Background())
	defer stop()

	cmd, args := flag.Arg(0), flag.Args()[1:]
	switch cmd {
	case "submit":
		fs := flag.NewFlagSet("submit", flag.ExitOnError)
		workload := fs.String("workload", "cartpole", "task to evolve")
		pop := fs.Int("pop", 64, "population size")
		gens := fs.Int("generations", 30, "generation budget")
		seed := fs.Uint64("seed", 42, "run seed")
		islands := fs.Int("islands", 0, "island count for an island-model run (0 = panmictic)")
		migEvery := fs.Int("migration-every", 0, "generations between champion migrations (with -islands; 0 = server default)")
		objectives := fs.String("objectives", "", "objective vector for a multi-objective (NSGA-II) run, '+'- or comma-joined, e.g. fitness+genes+energy (empty = scalar)")
		watch := fs.Bool("watch", false, "follow the job's record stream to completion")
		fs.Parse(args)
		st, err := c.Submit(ctx, serve.Spec{
			Workload: *workload, Population: *pop, Generations: *gens, Seed: *seed,
			Islands: *islands, MigrationEvery: *migEvery,
			Objectives: strings.ReplaceAll(*objectives, ",", "+"),
		})
		if err != nil {
			die(err)
		}
		if *watch {
			fmt.Printf("submitted %s (%s)\n", st.ID, st.State)
			watchJob(ctx, c, st.ID)
			return
		}
		printJSON(st)

	case "watch":
		if len(args) != 1 {
			usage()
		}
		watchJob(ctx, c, args[0])

	case "cancel":
		if len(args) != 1 {
			usage()
		}
		st, err := c.Cancel(ctx, args[0])
		if err != nil {
			die(err)
		}
		printJSON(st)

	case "checkpoint":
		if len(args) != 1 {
			usage()
		}
		st, err := c.Checkpoint(ctx, args[0])
		if err != nil {
			die(err)
		}
		printJSON(st)

	case "status":
		if len(args) != 1 {
			usage()
		}
		st, err := c.Job(ctx, args[0])
		if err != nil {
			die(err)
		}
		printJSON(st)

	case "list":
		jobs, err := c.List(ctx)
		if err != nil {
			die(err)
		}
		fmt.Printf("%-10s %-12s %-14s %-5s %-5s %s\n", "id", "workload", "state", "gens", "best", "error")
		for _, j := range jobs {
			fmt.Printf("%-10s %-12s %-14s %-5d %-5.1f %s\n",
				j.ID, j.Spec.Workload, j.State, j.Generations, j.BestFitness, j.Error)
		}

	case "metrics":
		rep, err := c.Metrics(ctx)
		if err != nil {
			die(err)
		}
		data, err := rep.JSON()
		if err != nil {
			die(err)
		}
		fmt.Println(string(data))

	case "cluster":
		if len(args) == 2 && args[0] == "join" {
			mem, err := c.ClusterJoin(ctx, args[1])
			if err != nil {
				die(err)
			}
			printJSON(mem)
			return
		}
		if len(args) != 0 {
			usage()
		}
		st, err := c.Cluster(ctx)
		if err != nil {
			die(err)
		}
		fmt.Printf("ring points: %d\n", st.RingPoints)
		fmt.Printf("%-10s %-28s %-6s %-6s %s\n", "id", "addr", "alive", "fails", "last seen")
		for _, m := range st.Members {
			last := ""
			if !m.LastSeen.IsZero() {
				last = m.LastSeen.Format(time.RFC3339)
			}
			fmt.Printf("%-10s %-28s %-6v %-6d %s\n", m.ID, m.Addr, m.Alive, m.FailedChecks, last)
		}

	case "load":
		fs := flag.NewFlagSet("load", flag.ExitOnError)
		workload := fs.String("workload", "cartpole", "task to evolve")
		pop := fs.Int("pop", 32, "population size")
		gens := fs.Int("generations", 5, "generation budget")
		seed := fs.Uint64("seed", 42, "base seed")
		jobs := fs.Int("jobs", 8, "submissions")
		conc := fs.Int("concurrency", 0, "in-flight submissions (0 = all at once)")
		sameSeed := fs.Bool("same-seed", false, "submit identical specs (exercises the shared run cache)")
		noWatch := fs.Bool("no-watch", false, "fire-and-forget: do not follow admitted jobs")
		fs.Parse(args)
		rep, err := c.Load(ctx, serve.LoadSpec{
			Template: serve.Spec{
				Workload: *workload, Population: *pop, Generations: *gens, Seed: *seed,
			},
			Jobs:          *jobs,
			Concurrency:   *conc,
			DistinctSeeds: !*sameSeed,
			Watch:         !*noWatch,
		})
		if err != nil {
			die(err)
		}
		printJSON(rep)

	default:
		fmt.Fprintf(os.Stderr, "genesysctl: unknown command %q (have %s)\n",
			cmd, strings.Join([]string{"submit", "watch", "cancel", "checkpoint", "status", "list", "metrics", "cluster", "load"}, ", "))
		os.Exit(2)
	}
}
