// Command genesys evolves a workload on the simulated GeneSys SoC: the
// full closed loop of the paper — ADAM inference against the
// environment, EvE reproduction — with per-generation algorithm and
// hardware reporting.
//
// Usage:
//
//	genesys -workload cartpole -generations 100 -pop 150 -hw
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/evolve"
	"repro/internal/serve/signalctx"
)

func main() {
	var (
		workload    = flag.String("workload", "cartpole", "task to evolve: "+strings.Join(evolve.WorkloadNames(), ", "))
		generations = flag.Int("generations", 50, "generation budget")
		pop         = flag.Int("pop", 150, "population size")
		seed        = flag.Uint64("seed", 42, "run seed")
		hw          = flag.Bool("hw", true, "account every generation on the simulated SoC")
		quiet       = flag.Bool("quiet", false, "suppress per-generation lines")
		save        = flag.String("save", "", "write the best evolved genome to this JSON file")
		functional  = flag.Bool("functional", false, "compute (not just account) the run on the functional EvE/ADAM datapaths")
	)
	flag.Parse()

	// Ctrl-C or a container stop (SIGTERM) stops the loop at the next
	// generation boundary; the summary (and -save genome) below still
	// run on the partial state.
	ctx, stop := signalctx.Notify(context.Background())
	defer stop()

	if *functional {
		runFunctional(ctx, *workload, *pop, *generations, *seed, *quiet)
		return
	}

	sys, err := core.New(core.Config{
		Workload:       *workload,
		Seed:           *seed,
		Population:     *pop,
		HardwareInLoop: *hw,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "genesys:", err)
		os.Exit(1)
	}

	fmt.Printf("evolving %s: pop=%d budget=%d generations, target fitness %.1f\n",
		*workload, *pop, *generations, sys.Workload().Target)
	for g := 0; g < *generations; g++ {
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "genesys: interrupted; reporting partial run")
			break
		}
		res, err := sys.RunGeneration()
		if err != nil {
			fmt.Fprintln(os.Stderr, "genesys:", err)
			os.Exit(1)
		}
		if !*quiet {
			line := fmt.Sprintf("gen %3d  max %8.2f  mean %8.2f  species %2d  genes %6d",
				res.Stats.Generation, res.Stats.MaxFitness, res.Stats.MeanFitness,
				res.Stats.NumSpecies, res.Stats.TotalGenes)
			if res.HasHW {
				line += fmt.Sprintf("  | soc: %.3f ms  %.2f uJ  move %4.1f%%",
					res.HW.TotalSeconds*1e3, res.HW.TotalEnergyPJ/1e6,
					res.HW.DataMovementFraction()*100)
			}
			fmt.Println(line)
		}
		if res.Stats.Solved {
			fmt.Printf("solved at generation %d (fitness %.2f >= target %.1f)\n",
				res.Stats.Generation, res.Stats.MaxFitness, sys.Workload().Target)
			break
		}
	}

	sum := sys.Summary()
	fmt.Printf("\nsummary: solved=%v generations=%d best=%.2f\n",
		sum.Solved, sum.Generations, sum.BestFitness)
	if *hw {
		fmt.Printf("soc: %d cycles, %.3f ms wall, %.2f uJ total, avg %.1f mW\n",
			sum.TotalCycles, sum.TotalSeconds*1e3, sum.TotalEnergyPJ/1e6,
			sum.TotalEnergyPJ/1e9/sum.TotalSeconds)
	}

	if *save != "" {
		// BestEver updates during reproduction; a run that solves on its
		// final generation holds the winner in the live population.
		best := sys.Runner().Pop.BestEver
		if cur := sys.Runner().Pop.Best(); best == nil ||
			(cur != nil && cur.Fitness > best.Fitness) {
			best = cur
		}
		f, err := os.Create(*save)
		if err != nil {
			fmt.Fprintln(os.Stderr, "genesys:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := best.Save(f); err != nil {
			fmt.Fprintln(os.Stderr, "genesys:", err)
			os.Exit(1)
		}
		fmt.Printf("best genome (%d genes, fitness %.2f) written to %s\n",
			best.NumGenes(), best.Fitness, *save)
	}
}

// runFunctional drives the functional-datapath loop: inference on the
// simulated systolic array, reproduction through the PE pipeline.
func runFunctional(ctx context.Context, workload string, pop, generations int, seed uint64, quiet bool) {
	sys, err := core.NewFunctional(workload, pop, seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "genesys:", err)
		os.Exit(1)
	}
	fmt.Printf("evolving %s on the functional datapath (pop=%d)\n", workload, pop)
	for g := 0; g < generations; g++ {
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "genesys: interrupted")
			return
		}
		st, err := sys.RunGeneration()
		if err != nil {
			fmt.Fprintln(os.Stderr, "genesys:", err)
			os.Exit(1)
		}
		if !quiet {
			fmt.Printf("gen %3d  max %8.2f  mean %8.2f  array-cycles %10d  pe-genes %7d\n",
				st.Generation, st.MaxFitness, st.MeanFitness, st.ArrayCycles, st.PEGenes)
		}
		if st.Solved {
			fmt.Printf("solved at generation %d\n", st.Generation)
			return
		}
	}
	fmt.Println("budget exhausted")
}
