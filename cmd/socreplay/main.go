// Command socreplay replays a reproduction trace (produced by
// `characterize -trace`) through the EvE hardware model at an arbitrary
// design point — the paper's trace-driven evaluation methodology as a
// standalone tool.
//
// Usage:
//
//	characterize -workload alien-ram -generations 5 -trace alien.trace
//	socreplay -trace alien.trace -pes 256 -noc multicast
//	socreplay -trace alien.trace -pes 8 -noc p2p -alloc fifo
//	socreplay -trace alien.trace -json counters.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/hw/eve"
	"repro/internal/hw/hwsim"
	"repro/internal/hw/noc"
	"repro/internal/serve/signalctx"
	"repro/internal/trace"
)

func main() {
	var (
		tracePath = flag.String("trace", "", "trace file to replay (required)")
		pes       = flag.Int("pes", 256, "EvE PE count")
		nocKind   = flag.String("noc", "multicast", "interconnect: multicast | p2p")
		alloc     = flag.String("alloc", "greedy", "PE allocation: greedy | fifo")
		jsonOut   = flag.String("json", "", "write the per-generation counter trees to this file as JSON")
	)
	flag.Parse()
	if *tracePath == "" {
		flag.Usage()
		os.Exit(2)
	}

	// Ctrl-C or SIGTERM stops the replay at the next generation
	// boundary; totals and -json output still flush for the partial
	// replay.
	ctx, stop := signalctx.Notify(context.Background())
	defer stop()

	f, err := os.Open(*tracePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "socreplay:", err)
		os.Exit(1)
	}
	tr, err := trace.Parse(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "socreplay:", err)
		os.Exit(1)
	}

	kind := noc.MulticastTree
	switch *nocKind {
	case "multicast":
	case "p2p":
		kind = noc.PointToPoint
	default:
		fmt.Fprintf(os.Stderr, "socreplay: unknown noc %q\n", *nocKind)
		os.Exit(2)
	}
	cfg := eve.DefaultConfig(*pes, kind)
	switch *alloc {
	case "greedy":
		cfg.Allocation = eve.AllocGreedy
	case "fifo":
		cfg.Allocation = eve.AllocFIFO
	default:
		fmt.Fprintf(os.Stderr, "socreplay: unknown allocation %q\n", *alloc)
		os.Exit(2)
	}

	engine := eve.New(cfg, nil)
	fmt.Printf("replaying %s: %d generations on %d PEs, %s NoC, %s allocation\n\n",
		*tracePath, len(tr.Generations), *pes, kind, cfg.Allocation)
	fmt.Printf("%-4s %-9s %-8s %-11s %-11s %-9s %-9s %-7s\n",
		"gen", "children", "waves", "cycles", "sram-rd", "sram-wr", "uJ", "util%")
	var totCycles int64
	var totEnergy float64
	var records []hwsim.Record
	for i := range tr.Generations {
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "socreplay: interrupted; flushing partial replay")
			break
		}
		g := &tr.Generations[i]
		// Reset per generation so each snapshot is that generation's own
		// counter ledger, not a running total.
		engine.Reset()
		r := engine.RunGeneration(g)
		totCycles += r.TotalCycles
		totEnergy += r.TotalEnergyPJ()
		fmt.Printf("%-4d %-9d %-8d %-11d %-11d %-9d %-9.2f %-7.1f\n",
			g.Index, r.Children, r.Waves, r.TotalCycles, r.SRAMReads, r.SRAMWrites,
			r.TotalEnergyPJ()/1e6, r.Utilization*100)
		if *jsonOut != "" {
			records = append(records, hwsim.Record{
				Generation: g.Index,
				Report:     engine.Counters().Snapshot(),
			})
		}
	}
	fmt.Printf("\ntotal: %d cycles (%.3f ms @200MHz), %.2f uJ\n",
		totCycles, float64(totCycles)/200e6*1e3, totEnergy/1e6)

	if *jsonOut != "" {
		data, err := json.MarshalIndent(records, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "socreplay:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "socreplay:", err)
			os.Exit(1)
		}
		fmt.Printf("counters: %d generation trees written to %s\n", len(records), *jsonOut)
	}
}
