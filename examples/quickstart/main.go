// Quickstart: evolve a CartPole controller with NEAT in a dozen lines.
//
// This is the paper's Fig. 2 experience on the smallest task: start
// from minimal topologies (inputs wired straight to outputs with zero
// weights) and let crossover + mutation discover both the wiring and
// the weights. No hardware model — just the learning algorithm.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	sys, err := core.New(core.Config{
		Workload:   "cartpole",
		Seed:       7,
		Population: 150,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("evolving cartpole (target: balance for 195 of 200 steps)")
	for gen := 0; gen < 50; gen++ {
		res, err := sys.RunGeneration()
		if err != nil {
			log.Fatal(err)
		}
		st := res.Stats
		fmt.Printf("gen %2d: best %6.1f  mean %6.1f  species %d  genes/genome %.1f\n",
			st.Generation, st.MaxFitness, st.MeanFitness, st.NumSpecies,
			float64(st.TotalGenes)/150)
		if st.Solved {
			fmt.Println("solved! the population evolved a balancing controller.")
			return
		}
	}
	fmt.Printf("budget exhausted; best fitness %.1f\n", sys.Summary().BestFitness)
}
