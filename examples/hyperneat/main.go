// HyperNEAT: indirect encoding for buffer-bound accelerators.
//
// Section III-D1 of the paper notes that direct NEAT genomes cannot be
// encoded as compactly as convolutional layers, and points at
// HyperNEAT as the remedy "if need be". This example shows why that
// matters to GeneSys specifically: a CPPN genome of a few dozen genes
// expands into a substrate network thousands of genes large, so the
// genome buffer stores the CPPN while ADAM runs the expanded network.
// The CPPNs are evolved with the ordinary NEAT machinery against
// MountainCar.
//
//	go run ./examples/hyperneat
package main

import (
	"fmt"
	"log"

	"repro/internal/env"
	"repro/internal/gene"
	"repro/internal/hypernet"
	"repro/internal/neat"
	"repro/internal/network"
)

func main() {
	sub, err := hypernet.GridSubstrate(2, 8, 3) // mountaincar: 2 obs, 3 actions
	if err != nil {
		log.Fatal(err)
	}
	e, err := env.New("mountaincar")
	if err != nil {
		log.Fatal(err)
	}

	cfg := hypernet.CPPNConfig()
	cfg.PopulationSize = 80
	pop, err := neat.NewPopulation(cfg, 7)
	if err != nil {
		log.Fatal(err)
	}

	evalCPPN := func(cppn *gene.Genome) (fitness float64, phenoGenes int) {
		pheno, err := hypernet.Decode(cppn, sub)
		if err != nil {
			return 0, 0
		}
		net, err := network.New(pheno)
		if err != nil {
			return 0, pheno.NumGenes()
		}
		obs := e.Reset(5)
		best := -1.2
		steps := 0
		for {
			act, err := net.Feed(obs)
			if err != nil {
				return 0, pheno.NumGenes()
			}
			var done bool
			obs, _, done = e.Step(act)
			steps++
			if obs[0] > best {
				best = obs[0]
			}
			if done {
				break
			}
		}
		if best >= 0.5 {
			return 100 + float64(e.MaxSteps()-steps), pheno.NumGenes()
		}
		return (best + 1.2) / 1.7 * 90, pheno.NumGenes()
	}

	fmt.Println("evolving CPPNs whose decoded substrate networks drive MountainCar")
	fmt.Printf("%-4s %-9s %-11s %-13s %-12s\n",
		"gen", "best", "cppn-genes", "pheno-genes", "compression")
	for gen := 0; gen < 25; gen++ {
		var best *gene.Genome
		bestPheno := 0
		for _, g := range pop.Genomes {
			f, pg := evalCPPN(g)
			g.Fitness = f
			if best == nil || f > best.Fitness {
				best, bestPheno = g, pg
			}
		}
		comp := 0.0
		if best.NumGenes() > 0 {
			comp = float64(bestPheno) / float64(best.NumGenes())
		}
		fmt.Printf("%-4d %-9.1f %-11d %-13d %-12.1f\n",
			gen, best.Fitness, best.NumGenes(), bestPheno, comp)
		if best.Fitness >= 100 {
			fmt.Println("solved: the indirect encoding reached the flag.")
			fmt.Printf("genome buffer stores %d genes instead of %d (%.0f× smaller)\n",
				best.NumGenes(), bestPheno, comp)
			return
		}
		if _, err := pop.Epoch(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("budget exhausted (MountainCar via indirect encoding is hard; try more generations)")
}
