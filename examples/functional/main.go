// Functional datapath: evolution computed by the hardware models.
//
// Everything in this example happens at hardware semantics — genomes
// live as quantized 64-bit gene words, every inference runs on the
// simulated 32×32 systolic array (wavefront-accurate), and every child
// is produced by streaming aligned parent genes through the functional
// four-stage PE pipeline driven by 8-bit XOR-WOW draws. The paper's
// claim that GeneSys "evolves the topology and weights of neural
// networks completely in hardware" is executed, not estimated.
//
//	go run ./examples/functional
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	sys, err := core.NewFunctional("cartpole", 100, 7)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("cartpole on the functional GeneSys datapath")
	fmt.Printf("%-4s %-9s %-9s %-14s %-10s\n",
		"gen", "best", "mean", "array-cycles", "pe-genes")
	for gen := 0; gen < 40; gen++ {
		st, err := sys.RunGeneration()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4d %-9.1f %-9.1f %-14d %-10d\n",
			st.Generation, st.MaxFitness, st.MeanFitness, st.ArrayCycles, st.PEGenes)
		if st.Solved {
			fmt.Println("solved — every arithmetic operation of this run went through",
				"the simulated EvE and ADAM datapaths.")
			return
		}
	}
	fmt.Println("budget exhausted")
}
