// LunarLander with the GeneSys SoC in the loop.
//
// This example runs the complete system of the paper's walkthrough
// (Section IV-B): every generation the population is evaluated against
// the lander environment (the work ADAM performs), the reproduction
// trace is replayed through the EvE model, and the chip's time, energy
// and data-movement split are reported alongside the learning curve —
// the numbers behind Fig. 9 and Fig. 10c.
//
//	go run ./examples/lunarlander
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	sys, err := core.New(core.Config{
		Workload:       "lunarlander",
		Seed:           11,
		Population:     150,
		HardwareInLoop: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("evolving a lunar-lander policy on the simulated GeneSys SoC")
	fmt.Printf("%-4s %-9s %-9s | %-11s %-10s %-10s %-7s\n",
		"gen", "best", "mean", "soc-ms", "infer-uJ", "evolve-uJ", "move%")
	for gen := 0; gen < 40; gen++ {
		res, err := sys.RunGeneration()
		if err != nil {
			log.Fatal(err)
		}
		st, hw := res.Stats, res.HW
		fmt.Printf("%-4d %-9.1f %-9.1f | %-11.3f %-10.2f %-10.2f %-7.1f\n",
			st.Generation, st.MaxFitness, st.MeanFitness,
			hw.TotalSeconds*1e3,
			hw.Inference.TotalEnergyPJ()/1e6,
			hw.Evolution.TotalEnergyPJ()/1e6,
			hw.DataMovementFraction()*100)
		if st.Solved {
			fmt.Println("landed! target fitness reached.")
			break
		}
	}

	sum := sys.Summary()
	fmt.Printf("\ntotal chip activity: %.2f ms, %.1f uJ (avg %.1f mW) over %d generations\n",
		sum.TotalSeconds*1e3, sum.TotalEnergyPJ/1e6,
		sum.TotalEnergyPJ/1e9/sum.TotalSeconds, sum.Generations)
	fmt.Println("compare: the embedded GPU baseline spends millijoules per generation",
		"on the same work (run `go run ./cmd/experiments -run fig9d`).")
}
