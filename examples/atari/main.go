// Atari-RAM scale: the heavyweight class of the paper's workloads.
//
// The 128-byte RAM titles are what push GeneSys: ~2.5k-gene genomes,
// population gene totals in the 10^5 range (Fig. 4b), and reproduction
// op counts in the hundred-thousands per generation (Fig. 5a) — the
// gene-level parallelism EvE's 256 PEs exist to absorb. This example
// evolves Asterix-ram and reports the scale metrics plus the on-chip
// footprint against the 1.5 MB genome buffer.
//
//	go run ./examples/atari
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/hw/energy"
)

func main() {
	sys, err := core.New(core.Config{
		Workload:       "asterix-ram",
		Seed:           5,
		Population:     150, // paper scale
		HardwareInLoop: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	buffer := energy.DefaultSoC().SRAMKB * 1024

	fmt.Println("evolving asterix-ram at paper scale (pop=150, 128-byte observations)")
	fmt.Printf("%-4s %-8s %-9s %-10s %-10s %-9s %-8s\n",
		"gen", "best", "genes", "ops/gen", "foot-KB", "buf-use%", "soc-ms")
	for gen := 0; gen < 4; gen++ {
		res, err := sys.RunGeneration()
		if err != nil {
			log.Fatal(err)
		}
		st := res.Stats
		ops := st.CrossoverOps + st.MutationOps
		fmt.Printf("%-4d %-8.1f %-9d %-10d %-10.0f %-8.1f %-8.2f\n",
			st.Generation, st.MaxFitness, st.TotalGenes, ops,
			float64(st.FootprintBytes)/1024,
			float64(st.FootprintBytes)/float64(buffer)*100,
			res.HW.TotalSeconds*1e3)
		if res.HW.Spilled {
			fmt.Println("  !! generation spilled the on-chip genome buffer to DRAM")
		}
		if st.Solved {
			break
		}
	}

	last := sys.History[len(sys.History)-1]
	fmt.Printf("\ngene-level parallelism: %d ops this generation across 256 PEs (%d waves)\n",
		last.HW.Evolution.GeneOps, last.HW.Evolution.Waves)
	fmt.Printf("population-level parallelism: %d genomes' inference packed onto the 32x32 array\n",
		150)
	fmt.Printf("chip energy this generation: %.1f uJ (evolve %.1f + infer %.1f)\n",
		last.HW.TotalEnergyPJ/1e6,
		last.HW.Evolution.TotalEnergyPJ()/1e6,
		last.HW.Inference.TotalEnergyPJ()/1e6)
}
