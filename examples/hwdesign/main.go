// Hardware design-space exploration.
//
// The paper's Section VI-D asks: how many EvE PEs, and which
// interconnect? This example answers with the same methodology — evolve
// a real workload to get a reproduction trace, then replay that trace
// across design points, printing SRAM reads, cycles, energy, and the
// power/area cost of each point (the data behind Fig. 8b/c and
// Fig. 11b/c).
//
//	go run ./examples/hwdesign
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/evolve"
	"repro/internal/hw/energy"
	"repro/internal/hw/eve"
	"repro/internal/hw/noc"
	"repro/internal/neat"
	"repro/internal/trace"
)

func main() {
	// 1. Evolve Alien-ram a few generations to harvest a realistic
	//    reproduction trace (hundred-thousand-op scale).
	cfg := neat.DefaultConfig(1, 1)
	cfg.PopulationSize = 64
	r, err := evolve.NewRunner("alien-ram", cfg, 3)
	if err != nil {
		log.Fatal(err)
	}
	tr := &trace.Trace{}
	r.SetRecorder(tr)
	if _, err := r.Run(context.Background(), 3); err != nil {
		log.Fatal(err)
	}
	g := tr.Last()
	fmt.Printf("trace: generation %d, %d children, %d parents, %d genes in population\n\n",
		g.Index, len(g.Children), len(g.ParentSizes), g.PopulationGenes)

	// 2. Sweep PE count × NoC topology.
	fmt.Printf("%-5s %-15s %-12s %-12s %-10s %-9s %-9s %-9s\n",
		"PEs", "noc", "cycles", "sram-reads", "rd/cyc", "energy-uJ", "power-mW", "area-mm2")
	for _, pes := range []int{2, 8, 32, 128, 256, 512} {
		for _, kind := range []noc.Kind{noc.PointToPoint, noc.MulticastTree} {
			rep := eve.New(eve.DefaultConfig(pes, kind), nil).RunGeneration(g)

			soCfg := energy.DefaultSoC()
			soCfg.NumEvEPEs = pes
			soCfg.Multicast = kind == noc.MulticastTree
			fmt.Printf("%-5d %-15s %-12d %-12d %-10.1f %-9.2f %-9.0f %-9.2f\n",
				pes, kind, rep.StreamCycles, rep.SRAMReads, rep.ReadsPerCycle,
				rep.TotalEnergyPJ()/1e6,
				soCfg.RooflinePower().Total, soCfg.Area().Total)
		}
	}

	fmt.Println("\nreading the table:")
	fmt.Println(" - multicast cuts SRAM reads by the parent-reuse factor (Fig. 11b);")
	fmt.Println(" - more PEs co-schedule siblings, so reads and cycles both fall (Fig. 11c);")
	fmt.Println(" - the paper picks 256 PEs + multicast: under 1 W, 2.45 mm2 (Fig. 8).")
}
